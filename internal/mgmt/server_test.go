package mgmt

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer serves a few deterministic handlers for protocol tests.
func echoServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer(nil)
	s.Register("echo", func(p json.RawMessage) (any, error) {
		var v any
		if err := strictUnmarshal(p, &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	s.Register("add", func(p json.RawMessage) (any, error) {
		var in struct{ A, B int }
		if err := json.Unmarshal(p, &in); err != nil {
			return nil, BadParams(err)
		}
		return map[string]int{"sum": in.A + in.B}, nil
	})
	s.Register("boom", func(json.RawMessage) (any, error) {
		return nil, fmt.Errorf("kaboom")
	})
	s.Register(StatusMethod, func(json.RawMessage) (any, error) {
		return map[string]bool{"draining": s.Draining()}, nil
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c, err := Dial(s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return s, c
}

func wantCode(t *testing.T, err error, code int) {
	t.Helper()
	rpcErr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error = %v (%T), want *mgmt.Error", err, err)
	}
	if rpcErr.Code != code {
		t.Fatalf("code = %d (%s), want %d", rpcErr.Code, rpcErr.Message, code)
	}
}

func TestCallRoundTrip(t *testing.T) {
	_, c := echoServer(t)
	var out struct {
		Sum int `json:"sum"`
	}
	if err := c.Call("add", map[string]int{"a": 2, "b": 40}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Sum != 42 {
		t.Errorf("sum = %d, want 42", out.Sum)
	}
}

func TestErrorEnvelopes(t *testing.T) {
	s, c := echoServer(t)

	// Unknown method.
	wantCode(t, c.Call("no.such.method", nil, nil), CodeUnknownMethod)

	// Handler failure surfaces as internal.
	wantCode(t, c.Call("boom", nil, nil), CodeInternal)

	// Bad params.
	wantCode(t, c.Call("add", json.RawMessage(`"not an object"`), nil), CodeBadParams)

	// Version mismatch: speak the wire directly with a wrong envelope.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"v":99,"id":1,"method":"echo"}`+"\n")
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeVersion {
		t.Errorf("version mismatch answered %+v, want code %d", resp, CodeVersion)
	}
	if resp.ID != 1 {
		t.Errorf("response id = %d, want the echoed 1", resp.ID)
	}

	// Parse failure.
	fmt.Fprintf(conn, "this is not json\n")
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == nil || resp.Error.Code != CodeParse {
		t.Errorf("junk line answered %+v, want code %d", resp, CodeParse)
	}
}

func TestDrainingRejectsAllButStatus(t *testing.T) {
	s, c := echoServer(t)
	s.Drain()
	wantCode(t, c.Call("echo", "hi", nil), CodeDraining)
	var st struct {
		Draining bool `json:"draining"`
	}
	if err := c.Call(StatusMethod, nil, &st); err != nil {
		t.Fatalf("node.status during drain: %v", err)
	}
	if !st.Draining {
		t.Error("status does not report draining")
	}
}

// TestBatchPipelining writes a burst of requests before reading any
// response and checks results come back in request order, including an
// error envelope in the middle that must not derail the rest.
func TestBatchPipelining(t *testing.T) {
	_, c := echoServer(t)
	const n = 500
	params := make([]any, n)
	for i := range params {
		if i == 250 {
			params[i] = "not an object" // add will reject this one
			continue
		}
		params[i] = map[string]int{"a": i, "b": 1}
	}
	results, err := c.Batch("add", params)
	if err == nil {
		t.Fatal("batch with one bad request reported no error")
	}
	wantCode(t, err, CodeBadParams)
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, raw := range results {
		if i == 250 {
			if raw != nil {
				t.Errorf("bad request %d produced a result", i)
			}
			continue
		}
		var out struct {
			Sum int `json:"sum"`
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if out.Sum != i+1 {
			t.Errorf("result %d = %d, want %d (order broken)", i, out.Sum, i+1)
		}
	}
	// The connection survives the mid-batch error.
	if err := c.Call("echo", "still alive", nil); err != nil {
		t.Errorf("connection dead after batch error: %v", err)
	}
}

// TestConcurrentConnections hammers the server from many connections at
// once; handlers run under the shared lock. Run with -race.
func TestConcurrentConnections(t *testing.T) {
	var mu sync.Mutex
	counter := 0
	s := NewServer(&mu)
	s.Register("inc", func(json.RawMessage) (any, error) {
		counter++ // protected by the server's lock
		return counter, nil
	})
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const conns, calls = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < calls; j++ {
				if err := c.Call("inc", nil, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if counter != conns*calls {
		t.Errorf("counter = %d, want %d", counter, conns*calls)
	}
}

func TestCloseIsIdempotentAndWakesClients(t *testing.T) {
	s, c := echoServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := c.Call("echo", "x", nil); err == nil {
		t.Error("call succeeded against a closed server")
	}
	if _, ok := err2code(c.Call("echo", "y", nil)); ok {
		t.Error("closed connection produced an RPC error envelope")
	}
}

func err2code(err error) (int, bool) {
	if rpcErr, ok := err.(*Error); ok {
		return rpcErr.Code, true
	}
	return 0, false
}

func TestMethodsSorted(t *testing.T) {
	s := NewServer(nil)
	s.Register("b.two", nil)
	s.Register("a.one", nil)
	s.Register("c.three", nil)
	got := strings.Join(s.Methods(), ",")
	if got != "a.one,b.two,c.three" {
		t.Errorf("Methods() = %s", got)
	}
}
