package netsim

import (
	"testing"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
)

func TestLinkAccessors(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 5e6, 0.002, qos.NewFIFO(4))
	if l.To() != "dst" {
		t.Errorf("To = %q", l.To())
	}
	if l.RateBPS() != 5e6 {
		t.Errorf("RateBPS = %v", l.RateBPS())
	}
	if l.Down() {
		t.Error("fresh link is down")
	}
	if u := l.Utilisation(); u != 0 {
		t.Errorf("idle utilisation = %v at t=0", u)
	}
}

func TestLinkDownDropsAndDrainsQueue(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 1e6, 0, qos.NewFIFO(16))
	// Queue a few packets, then fail the link before stepping: the one
	// in the transmitter completes, the queued ones are lost, and new
	// sends are lost too.
	for i := 0; i < 3; i++ {
		l.Send(packet.New(1, 2, 64, make([]byte, 100)))
	}
	l.SetDown(true)
	if !l.Down() {
		t.Fatal("link not down")
	}
	l.Send(packet.New(1, 2, 64, make([]byte, 100)))
	sim.Run()
	if len(dst.arrivals) != 1 {
		t.Errorf("%d arrivals, want 1 (the in-flight packet)", len(dst.arrivals))
	}
	if l.Lost.Events != 3 {
		t.Errorf("lost = %d, want 3 (2 drained + 1 refused)", l.Lost.Events)
	}
	// Restore: service resumes.
	l.SetDown(false)
	l.Send(packet.New(1, 2, 64, make([]byte, 100)))
	sim.Run()
	if len(dst.arrivals) != 2 {
		t.Errorf("%d arrivals after restore, want 2", len(dst.arrivals))
	}
}

func TestLinkRestoreWhileIdleIsHarmless(t *testing.T) {
	sim := New()
	dst := &sink{name: "dst", sim: sim}
	l := NewLink(sim, "src", dst, 1e6, 0, qos.NewFIFO(4))
	l.SetDown(true)
	l.SetDown(false) // nothing queued: must not panic or transmit
	sim.Run()
	if len(dst.arrivals) != 0 {
		t.Error("phantom delivery")
	}
}
