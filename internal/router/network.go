package router

import (
	"fmt"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/device"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
)

// NodeSpec describes one router of a simulated network.
type NodeSpec struct {
	Name string
	// Hardware selects the embedded MPLS device data plane; otherwise
	// the software forwarder is used.
	Hardware bool
	// RouterType configures a hardware plane as LER or LSR.
	RouterType lsm.RouterType
	// SoftwareCost overrides the software per-packet cost (<=0: default).
	SoftwareCost netsim.Time
	// EngineWorkers, when > 0, gives this software-plane node the
	// concurrent dataplane engine with that many shard workers instead
	// of the serial forwarder: RCU table updates and a per-packet cost
	// amortised across the workers. Ignored for hardware nodes.
	EngineWorkers int
	// EngineBatch overrides the engine's per-worker batch size (<=0:
	// engine default). Only meaningful with EngineWorkers > 0.
	EngineBatch int
	// InfoBase selects the ILM lookup backend of software planes:
	// "map" (default), "linear" (the paper's information base scan) or
	// "indexed" (the O(1) hash index). Ignored for hardware nodes,
	// whose information base is the device's own.
	InfoBase string
}

// ilmKind maps a NodeSpec.InfoBase string to the swmpls backend.
func ilmKind(name string) (swmpls.ILMKind, error) {
	switch name {
	case "", "map":
		return swmpls.ILMMap, nil
	case "linear":
		return swmpls.ILMLinear, nil
	case "indexed":
		return swmpls.ILMIndexed, nil
	default:
		return 0, fmt.Errorf("router: unknown infobase kind %q (want map, linear or indexed)", name)
	}
}

// LinkSpec describes one duplex connection.
type LinkSpec struct {
	A, B    string
	RateBPS float64
	Delay   netsim.Time
	// QueueCap bounds each direction's queue (packets). <=0 means 64.
	QueueCap int
	// NewQueue builds the scheduler per direction; nil means FIFO.
	NewQueue func(cap int) qos.Scheduler
	// Metric is the TE metric (0 = 1).
	Metric float64
}

// Network bundles a simulated MPLS network: event simulator, TE topology,
// LDP manager and the routers themselves.
type Network struct {
	Sim     *netsim.Simulator
	Topo    *te.Topology
	LDP     *ldp.Manager
	Routers map[string]*Router
}

// Build wires a network from specs: routers with their data planes, TE
// topology nodes/links, netsim links in both directions, and an LDP
// manager with every router registered.
func Build(nodes []NodeSpec, links []LinkSpec) (*Network, error) {
	n := &Network{
		Sim:     netsim.New(),
		Topo:    te.NewTopology(),
		Routers: make(map[string]*Router),
	}
	for _, spec := range nodes {
		if _, dup := n.Routers[spec.Name]; dup {
			return nil, fmt.Errorf("router: duplicate node %q", spec.Name)
		}
		kind, err := ilmKind(spec.InfoBase)
		if err != nil {
			return nil, err
		}
		var plane DataPlane
		switch {
		case spec.Hardware:
			plane = NewHardwarePlane(device.New(spec.RouterType, lsm.DefaultClock))
		case spec.EngineWorkers > 0:
			eng := dataplane.New(dataplane.Config{
				Workers:  spec.EngineWorkers,
				Batch:    spec.EngineBatch,
				Node:     spec.Name,
				NewTable: func() *swmpls.Forwarder { return swmpls.NewWith(swmpls.WithILM(kind)) },
			})
			plane = NewEnginePlane(eng, spec.SoftwareCost)
		default:
			plane = NewSoftwarePlaneWith(spec.SoftwareCost, swmpls.NewWith(swmpls.WithILM(kind)))
		}
		n.Routers[spec.Name] = New(n.Sim, spec.Name, plane)
		n.Topo.AddNode(spec.Name)
	}
	for _, spec := range links {
		ra, ok := n.Routers[spec.A]
		if !ok {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.A)
		}
		rb, ok := n.Routers[spec.B]
		if !ok {
			return nil, fmt.Errorf("router: link references unknown node %q", spec.B)
		}
		capacity := spec.QueueCap
		if capacity <= 0 {
			capacity = 64
		}
		newQueue := spec.NewQueue
		if newQueue == nil {
			newQueue = func(c int) qos.Scheduler { return qos.NewFIFO(c) }
		}
		ra.AttachLink(netsim.NewLink(n.Sim, spec.A, rb, spec.RateBPS, spec.Delay, newQueue(capacity)))
		rb.AttachLink(netsim.NewLink(n.Sim, spec.B, ra, spec.RateBPS, spec.Delay, newQueue(capacity)))
		if err := n.Topo.AddDuplex(spec.A, spec.B, te.LinkAttrs{
			CapacityBPS: spec.RateBPS,
			Metric:      spec.Metric,
			DelaySec:    spec.Delay,
		}); err != nil {
			return nil, err
		}
	}
	n.LDP = ldp.NewManager(n.Topo)
	for name, r := range n.Routers {
		if err := n.LDP.Register(name, r); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Close releases every router's data plane through the shared
// DataPlane contract — engine-backed planes stop their workers, serial
// planes are no-ops — so the network needs no knowledge of plane
// types.
func (n *Network) Close() {
	for _, r := range n.Routers {
		_ = r.Plane().Close()
	}
}

// SetTelemetry attaches one shared sink to every router: a single
// per-reason view of forwarding loss and one interleaved per-hop trace
// of the whole network. Each router attributes events to its own name.
func (n *Network) SetTelemetry(s telemetry.Sink) {
	for _, r := range n.Routers {
		r.SetTelemetry(s)
	}
}

// SetDropCounters attaches one shared drop-counter set to every router,
// giving the network a single per-reason view of forwarding loss.
func (n *Network) SetDropCounters(c *telemetry.DropCounters) {
	for _, r := range n.Routers {
		r.SetDropCounters(c)
	}
}

// SetTrace attaches one shared label-operation trace ring to every
// router, producing an interleaved per-hop trace of the whole network.
func (n *Network) SetTrace(t *telemetry.Ring) {
	for _, r := range n.Routers {
		r.SetTrace(t)
	}
}

// Router returns a node by name, panicking on unknown names — network
// construction is static, so a miss is a programming error.
func (n *Network) Router(name string) *Router {
	r, ok := n.Routers[name]
	if !ok {
		panic("router: unknown node " + name)
	}
	return r
}

// SetLinkDown fails (or restores) both directions of the a<->b
// connection. Unknown endpoints or links are an error so a typo in a
// failure script cannot silently test nothing.
func (n *Network) SetLinkDown(a, b string, down bool) error {
	ra, ok := n.Routers[a]
	if !ok {
		return fmt.Errorf("router: unknown node %q", a)
	}
	rb, ok := n.Routers[b]
	if !ok {
		return fmt.Errorf("router: unknown node %q", b)
	}
	lab, ok := ra.Link(b)
	if !ok {
		return fmt.Errorf("router: no link %s->%s", a, b)
	}
	lba, ok := rb.Link(a)
	if !ok {
		return fmt.Errorf("router: no link %s->%s", b, a)
	}
	lab.SetDown(down)
	lba.SetDown(down)
	return nil
}
