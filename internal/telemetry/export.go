package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels are constant key/value pairs attached to a metric series (for
// example {"node": "lsr1"}).
type Labels map[string]string

// Registry binds named metric sources — counters, gauges, histograms
// and drop-counter sets — and renders them in the Prometheus text
// exposition format, or as an expvar.Var for the stdlib's /debug/vars
// surface. Values are read through callbacks at render time, so a scrape
// always reflects the live counters; registration order is preserved
// within a metric family and families render sorted by name, which makes
// the output deterministic and golden-testable.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

type family struct {
	name, help string
	typ        string // "counter", "gauge" or "histogram"
	series     []series
}

type series struct {
	labels string // pre-rendered, sorted: `{a="x",b="y"}` or ""
	value  func() float64
	hist   func() HistSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Counter registers an integer counter series read through fn.
func (r *Registry) Counter(name, help string, labels Labels, fn func() uint64) {
	r.add(name, help, "counter", labels, series{value: func() float64 { return float64(fn()) }})
}

// Gauge registers a float gauge series read through fn.
func (r *Registry) Gauge(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "gauge", labels, series{value: fn})
}

// Histogram registers a histogram series whose snapshot is read through
// fn at render time.
func (r *Registry) Histogram(name, help string, labels Labels, fn func() HistSnapshot) {
	r.add(name, help, "histogram", labels, series{hist: fn})
}

// Drops registers one counter series per drop reason, labelled
// reason="<name>" on top of the given labels.
func (r *Registry) Drops(name, help string, labels Labels, c *DropCounters) {
	for reason := Reason(0); reason < NumReasons; reason++ {
		reason := reason
		with := Labels{"reason": reason.String()}
		for k, v := range labels {
			with[k] = v
		}
		r.Counter(name, help, with, func() uint64 { return c.Get(reason) })
	}
}

func (r *Registry) add(name, help, typ string, labels Labels, s series) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	} else if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, escapeLabel(labels[k])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabel applies the exposition format's label value escaping; %q
// in renderLabels already escapes quotes and backslashes Go-style, which
// coincides with the Prometheus rules for those, so only the newline
// needs care — and %q turns it into \n as well. The helper exists to
// keep unprintable bytes from leaking through %q's hex escapes.
func escapeLabel(v string) string {
	return strings.Map(func(c rune) rune {
		if c < 0x20 && c != '\n' && c != '\t' {
			return ' '
		}
		return c
	}, v)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format: # HELP / # TYPE headers, then one line per series
// (histograms expand into cumulative le-buckets plus _sum and _count).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s series) error {
	if f.typ != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		return err
	}
	snap := s.hist()
	cum := uint64(0)
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatValue(snap.Bounds[i])
		}
		if err := writeBucket(w, f.name, s.labels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatValue(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, snap.Count)
	return err
}

func writeBucket(w io.Writer, name, labels, le string, cum uint64) error {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	_, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, sep, le, cum)
	return err
}

func formatValue(v float64) string {
	if v == float64(uint64(v)) && v >= 0 && v < 1e15 {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// expvarAdapter renders the registry as one JSON object so it can be
// published with expvar.Publish: counters and gauges map to numbers,
// histograms to {count, sum} summaries.
type expvarAdapter struct{ r *Registry }

// Var returns an expvar.Var-compatible adapter (it implements the
// interface's String method); publish it with
// expvar.Publish("mpls", reg.Var()).
func (r *Registry) Var() interface{ String() string } { return expvarAdapter{r} }

func (a expvarAdapter) String() string {
	a.r.mu.Lock()
	names := append([]string(nil), a.r.names...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = a.r.families[n]
	}
	a.r.mu.Unlock()

	out := make(map[string]any, len(fams))
	for _, f := range fams {
		for _, s := range f.series {
			key := f.name + s.labels
			if f.typ == "histogram" {
				snap := s.hist()
				out[key] = map[string]any{"count": snap.Count, "sum": snap.Sum}
				continue
			}
			out[key] = s.value()
		}
	}
	buf, err := json.Marshal(out)
	if err != nil {
		return "{}"
	}
	return string(buf)
}
