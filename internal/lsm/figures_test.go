package lsm

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/wave"
)

// TestFigure14Level1Entries asserts the observations the paper draws from
// its Figure 14 simulation.
func TestFigure14Level1Entries(t *testing.T) {
	fig, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	tr := fig.Tracer

	// "As the values are entered we see w_index increment from 1 to 10,
	// indicating the label pairs are being properly stored and not
	// overwritten."
	var wSeq []uint64
	for _, ch := range tr.Changes("w_index") {
		wSeq = append(wSeq, ch.Value)
	}
	want := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if len(wSeq) != len(want) {
		t.Fatalf("w_index change sequence %v, want %v", wSeq, want)
	}
	for i := range want {
		if wSeq[i] != want[i] {
			t.Fatalf("w_index change sequence %v, want %v", wSeq, want)
		}
	}

	// "Once the lookup begins, we see that r_index begins incrementing
	// ... and stops at the index of the correct entry." Id 604 is the
	// fifth pair, index 4.
	if max := maxValue(t, tr, "r_index"); max != 4 {
		t.Errorf("r_index peaked at %d, want 4 (entry for id 604)", max)
	}

	// "When the entry is found, the lookup_done signal goes high for a
	// clock cycle."
	if n := tr.CountCycles("lookup_done", isHigh); n != 1 {
		t.Errorf("lookup_done high for %d cycles, want 1", n)
	}

	// "The new label (504) and operation (3) then appear and the
	// packetdiscard signal remains low."
	if fig.Result.Label != 504 {
		t.Errorf("label_out = %d, want 504", fig.Result.Label)
	}
	if fig.Result.Op != label.OpSwap { // op code 3
		t.Errorf("operation_out = %v (code %d), want swap (3)", fig.Result.Op, fig.Result.Op)
	}
	if n := tr.CountCycles("packetdiscard", isHigh); n != 0 {
		t.Errorf("packetdiscard went high for %d cycles, want 0", n)
	}
	// The hit is at position 5: 3*5+5 = 20 cycles.
	if fig.Cycles != SearchCycles(5) {
		t.Errorf("lookup took %d cycles, want %d", fig.Cycles, SearchCycles(5))
	}
}

// TestFigure15Level2Entries asserts the level-2 variant: all ten pairs
// written and read back correctly.
func TestFigure15Level2Entries(t *testing.T) {
	fig, err := Figure15()
	if err != nil {
		t.Fatal(err)
	}
	if !fig.Result.Found || fig.Result.Label != 504 {
		t.Errorf("lookup of label 5 = %+v, want label 504", fig.Result)
	}
	if n := fig.Tracer.CountCycles("packetdiscard", isHigh); n != 0 {
		t.Errorf("packetdiscard high for %d cycles, want 0", n)
	}
	if n := fig.Tracer.CountCycles("lookup_done", isHigh); n != 1 {
		t.Errorf("lookup_done high for %d cycles, want 1", n)
	}
	// Beyond the figure: every stored pair must read back.
	for i := 0; i < 10; i++ {
		res, _, err := fig.Bench.Lookup(infobase.Level2, infobase.Key(1+i))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Label != label.Label(500+i) {
			t.Errorf("lookup %d = %+v, want label %d", 1+i, res, 500+i)
		}
	}
}

// TestFigure16PacketDiscard asserts the miss behaviour: the read index
// sweeps all pairs, lookup_done and packetdiscard go high, and the output
// registers keep their previous values.
func TestFigure16PacketDiscard(t *testing.T) {
	fig, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	tr := fig.Tracer
	if fig.Result.Found {
		t.Fatal("lookup of label 27 reported found")
	}
	// "the r_index signal iterates to process all label pairs stored at
	// that level": 10 pairs, indices 0..9.
	if max := maxValue(t, tr, "r_index"); max != 9 {
		t.Errorf("r_index peaked at %d, want 9", max)
	}
	// "the lookup_done and packetdiscard signals are sent high".
	if _, ok := tr.FirstCycle("lookup_done", isHigh); !ok {
		t.Error("lookup_done never went high")
	}
	if !fig.Bench.HW.PacketDiscard.Bool() {
		t.Error("packetdiscard not high after the miss")
	}
	// "Signals label_out and operation_out remain unchanged": they were
	// never loaded, so they hold their reset values throughout.
	if n := tr.CountCycles("label_out", func(v uint64) bool { return v != 0 }); n != 0 {
		t.Errorf("label_out changed during a miss-only run (%d cycles nonzero)", n)
	}
	// Miss over 10 entries: 3*10+5 = 35 cycles.
	if fig.Cycles != SearchCycles(10) {
		t.Errorf("miss took %d cycles, want %d", fig.Cycles, SearchCycles(10))
	}
}

// TestFigureRenderings exercises the three output formats on a real
// figure so the cmd/lsmtrace paths are covered.
func TestFigureRenderings(t *testing.T) {
	fig, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	var table, waveOut, vcd bytes.Buffer
	if err := fig.Tracer.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if err := fig.Tracer.WriteWave(&waveOut); err != nil {
		t.Fatal(err)
	}
	if err := fig.Tracer.WriteVCD(&vcd, "fig14", time.Time{}); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{table.String(), waveOut.String()} {
		for _, sig := range []string{"packetid", "w_index", "lookup_done"} {
			if !strings.Contains(out, sig) {
				t.Errorf("rendering missing signal %s:\n%s", sig, out)
			}
		}
	}
	if !strings.Contains(table.String(), "604") {
		t.Error("table never shows packet id 604")
	}
	if !strings.Contains(vcd.String(), "$var wire 32 ") {
		t.Error("VCD missing 32-bit packetid declaration")
	}
}

func isHigh(v uint64) bool { return v == 1 }

func maxValue(t *testing.T, tr *wave.Tracer, name string) uint64 {
	t.Helper()
	var max uint64
	for _, ch := range tr.Changes(name) {
		if ch.Value > max {
			max = ch.Value
		}
	}
	return max
}

// TestTraceUpdateModes covers the control-unit trace helper across all
// four operation modes.
func TestTraceUpdateModes(t *testing.T) {
	for _, op := range []string{"swap", "pop", "push", "miss"} {
		op := op
		t.Run(op, func(t *testing.T) {
			tr, err := TraceUpdate(op)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Tracer.Len() == 0 {
				t.Fatal("empty trace")
			}
			discarded := tr.Bench.HW.PacketDiscard.Bool()
			if (op == "miss") != discarded {
				t.Errorf("op %s: discard=%v", op, discarded)
			}
			// The done pulse must appear exactly once in the trace.
			if n := tr.Tracer.CountCycles("done", isHigh); n != 1 {
				t.Errorf("done pulsed %d times", n)
			}
		})
	}
	if _, err := TraceUpdate("teleport"); err == nil {
		t.Error("unknown op accepted")
	}
}
