package main

import (
	"fmt"
	"os"
	"strings"

	"embeddedmpls/internal/faults"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/resilience"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/trafficgen"
)

// runChaos drives the diamond network through a seeded random fault
// schedule — link flaps, corruption windows and delay spikes on the
// primary path — and, with heal set, lets the resilience layer
// (keepalive monitor + health tracker + protection-switching healer)
// repair the damage. It prints the injected schedule, the recovery
// timeline and the fault/recovery counters, then verifies convergence:
// traffic must be flowing again at the end of the run with no repair
// retries exhausted. With heal set, non-convergence exits nonzero so a
// chaos run can gate CI. With transportUDP the diamond's links are
// loopback UDP sockets instead of simulated queues: the same fault
// schedule then plays out on real datagrams — corruption windows
// surface as wire-decode drops at the receiving socket — and the run
// advances in wall-clock time via RunReal.
func runChaos(seed int64, heal, hardware, transportUDP bool, duration, rate float64) {
	linkKind := router.TransportSim
	if transportUDP {
		linkKind = router.TransportUDP
	}
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: hardware, RouterType: lsm.LER, Transport: linkKind},
		{Name: "b", Hardware: hardware, RouterType: lsm.LSR, Transport: linkKind},
		{Name: "c", Hardware: hardware, RouterType: lsm.LSR, Transport: linkKind},
		{Name: "d", Hardware: hardware, RouterType: lsm.LER, Transport: linkKind},
	}
	links := []router.LinkSpec{
		{A: "a", B: "b", RateBPS: rate, Delay: 0.001, Metric: 1},
		{A: "b", B: "d", RateBPS: rate, Delay: 0.001, Metric: 1},
		{A: "a", B: "c", RateBPS: rate, Delay: 0.001, Metric: 5},
		{A: "c", B: "d", RateBPS: rate, Delay: 0.001, Metric: 5},
	}
	net, err := buildNet(nodes, links)
	check(err)
	defer net.Close()
	attachTelemetry(net)
	dst := packet.AddrFrom(10, 0, 0, 9)

	var events telemetry.EventCounters
	timeline := &resilience.Timeline{}
	var lastPath []string

	// With healing on, the control plane is the distributed one: every
	// router runs a signaling speaker, the LSP is signalled over
	// sessions, and repair is a protection-switch *request* at the
	// ingress. Without healing the legacy in-process manager installs
	// the LSP directly — there is nothing to converge.
	var speakers map[string]*signaling.Speaker
	if heal {
		speakers, err = signaling.Deploy(net,
			signaling.WithEvents(&events), signaling.WithUntil(duration))
		check(err)
		speakers["a"].OnEstablished = func(id string, path []string) {
			lastPath = append(lastPath[:0], path...)
		}
		sh := resilience.BindSessions(speakers["a"], net.Sim, timeline)
		check(speakers["a"].Setup(ldp.SetupRequest{
			ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
		}, nil))
		sh.Protect("l", []string{"a", "b", "d"})

		mon := resilience.NewMonitor(net, net.Sim, resilience.MonitorConfig{
			Interval: 0.005, MissThreshold: 3, Until: duration,
			Events: &events, Timeline: timeline,
		})
		mon.OnDown = sh.LinkDown
		mon.OnUp = sh.LinkUp
		check(mon.WatchBoth("a", "b"))
		check(mon.WatchBoth("b", "d"))
		// Telemetry-fed health: a burst of drops (e.g. a corruption
		// window killing packets mid-path) moves the LSP even when the
		// links still answer keepalives.
		resilience.TrackHealth(net.Sim, resilience.HealthConfig{
			Interval: 0.05, Threshold: 3, Bad: 2, Until: duration,
		}, traceDrops.Total, func(delta uint64) {
			timeline.Add(net.Sim.Now(), "health: %d drops this interval, moving LSP off suspect path", delta)
			sh.Degraded("l")
		})
	} else {
		_, err = net.LDP.SetupLSP(ldp.SetupRequest{
			ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
		})
		check(err)
	}

	inj := faults.NewInjector(net, &events)
	spec := faults.GenSpec{
		Links:    [][2]string{{"a", "b"}, {"b", "d"}},
		Duration: duration * 0.7, Flaps: 2, MeanOutage: duration * 0.05,
		Corruptions: 1, DelaySpikes: 1,
	}
	if heal {
		// Control-plane chaos: go deaf across a link while data still
		// flows. Only meaningful when sessions exist to sever.
		spec.SessionSevers = 1
		inj.SetSessionSever(func(a, b string, d float64) error {
			timeline.Add(net.Sim.Now(), "faults: severing signaling %s<->%s for %.3fs", a, b, d)
			if err := speakers[a].Sever(b, d); err != nil {
				return err
			}
			return speakers[b].Sever(a, d)
		})
	}
	schedule := faults.Generate(seed, spec)
	check(inj.Apply(schedule))
	fmt.Printf("chaos scenario (seed %d, %s plane, heal=%v), injected schedule:\n",
		seed, planeName(hardware), heal)
	for _, e := range schedule.Events {
		fmt.Printf("  %v\n", e)
	}

	c := trafficgen.NewCollector(net.Sim)
	c.TrackSeries(duration / 20)
	c.Attach(net.Router("d"))
	var lastDelivery float64
	prev := net.Router("d").OnDeliver
	net.Router("d").OnDeliver = func(p *packet.Packet) {
		lastDelivery = net.Sim.Now()
		prev(p)
	}
	trafficgen.CBR{Flow: trafficgen.Flow{ID: 1, Dst: dst}, Size: 512, Interval: 0.001, Stop: duration}.
		Install(net.Sim, net.Router("a"), c)

	if transportUDP {
		// Real sockets: pump virtual time against the wall clock, with
		// some slack after the last send for in-flight datagrams.
		net.RunReal(duration + 0.2)
	} else {
		net.Sim.Run()
	}

	fmt.Println("\nrecovery timeline:")
	if timeline.Len() == 0 {
		fmt.Println("  (no recovery actions: healing disabled or no faults bit)")
	} else {
		fmt.Print(timeline)
	}
	fmt.Println("\nfault/recovery events:")
	fmt.Printf("  %v\n", &events)
	report(c, duration)

	if heal {
		fmt.Printf("final LSP path: %s\n", strings.Join(lastPath, " "))
	} else {
		lsp, _ := net.LDP.LSP("l")
		fmt.Printf("final LSP path: %v\n", lsp.Path)
	}

	// Convergence: traffic flowing at the end (the last packet of a
	// healthy run lands within a handful of send intervals of the stop
	// time) and no repair gave up.
	converged := lastDelivery > duration-0.05 && events.Get(telemetry.EventRetryExhausted) == 0
	fmt.Printf("converged: %v (last delivery t=%.3fs of %.3fs)\n", converged, lastDelivery, duration)
	if transportUDP {
		fmt.Printf("transport: %v\n", net.Wire)
	}
	if heal && !converged {
		fmt.Println("chaos: FAILED to converge")
		os.Exit(1)
	}
}
