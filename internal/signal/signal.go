// Package signal is a message-level label distribution protocol in the
// style of CR-LDP (constraint-based LSP setup, which the paper cites as
// the label distribution machinery that makes MPLS useful for traffic
// engineering and QoS). Unlike package ldp — which programs every router
// synchronously, as an omniscient management plane — this package
// exchanges real protocol messages over the simulated network, so setup
// takes a round trip of control latency, failures surface as PathError
// messages, and state is held hop by hop:
//
//	ingress --LabelRequest-->  transit --LabelRequest--> egress
//	ingress <--LabelMapping--  transit <--LabelMapping-- egress
//
// Labels are allocated downstream-on-demand from *per-router* label
// spaces (the general MPLS model; package ldp's network-unique labels
// are the special case needed for tunnel hierarchies, which this
// signalling layer does not provide).
package signal

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
)

// MsgType enumerates the protocol messages.
type MsgType int

// The CR-LDP-style message set.
const (
	// LabelRequest travels downstream along the explicit route, asking
	// each hop to reserve bandwidth and the egress to start mapping.
	LabelRequest MsgType = iota
	// LabelMapping travels upstream, carrying the label the sender
	// allocated for this LSP.
	LabelMapping
	// PathError travels upstream when a hop cannot honour the request;
	// every hop it passes releases its state.
	PathError
	// LabelRelease travels downstream at teardown, unwinding state.
	LabelRelease
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case LabelRequest:
		return "label-request"
	case LabelMapping:
		return "label-mapping"
	case PathError:
		return "path-error"
	case LabelRelease:
		return "label-release"
	default:
		return fmt.Sprintf("msg(%d)", int(t))
	}
}

// Message is one signalling PDU.
type Message struct {
	Type      MsgType
	LSP       string
	FEC       ldp.FEC
	Route     []string // remaining explicit route, including the receiver
	Bandwidth float64
	CoS       label.CoS
	Label     label.Label // LabelMapping payload
	Reason    string      // PathError payload
}

// Event is one delivered message, for tracing and tests.
type Event struct {
	At       netsim.Time
	From, To string
	Msg      Message
}

// Fabric delivers signalling messages between adjacent nodes with the
// topology's per-link propagation delay — the control plane shares the
// wires with the data plane.
type Fabric struct {
	sim   *netsim.Simulator
	topo  *te.Topology
	nodes map[string]*Node
	// Log records every delivered message in order.
	Log []Event
}

// NewFabric builds an empty signalling fabric.
func NewFabric(sim *netsim.Simulator, topo *te.Topology) *Fabric {
	return &Fabric{sim: sim, topo: topo, nodes: make(map[string]*Node)}
}

// AddNode registers a router's signalling agent.
func (f *Fabric) AddNode(name string, installer ldp.Installer) *Node {
	n := &Node{
		name:      name,
		fab:       f,
		installer: installer,
		nextLabel: label.FirstUnreserved,
		sessions:  make(map[string]*session),
	}
	f.nodes[name] = n
	return n
}

// Node returns a registered agent.
func (f *Fabric) Node(name string) (*Node, bool) {
	n, ok := f.nodes[name]
	return n, ok
}

// send schedules delivery of m to an adjacent node after the link's
// propagation delay. Unreachable neighbours bounce a PathError back to
// the sender (after the same delay a timeout would notice in).
func (f *Fabric) send(from, to string, m Message) {
	attrs, linked := f.topo.Link(from, to)
	dst, known := f.nodes[to]
	if !linked || !known {
		src := f.nodes[from]
		bounce := Message{Type: PathError, LSP: m.LSP, Reason: fmt.Sprintf("no adjacency %s->%s", from, to)}
		f.sim.Schedule(0, func() {
			f.Log = append(f.Log, Event{At: f.sim.Now(), From: to, To: from, Msg: bounce})
			src.receive(to, bounce)
		})
		return
	}
	f.sim.Schedule(attrs.DelaySec, func() {
		f.Log = append(f.Log, Event{At: f.sim.Now(), From: from, To: to, Msg: m})
		dst.receive(from, m)
	})
}

// session is one LSP's state at one hop.
type session struct {
	fec        ldp.FEC
	upstream   string // neighbour the request came from ("" at ingress)
	downstream string // neighbour the request went to ("" at egress)
	bandwidth  float64
	cos        label.CoS
	inLabel    label.Label // label this node allocated (0 at ingress)
	reserved   bool        // bandwidth held on the downstream link
	installed  bool
	done       func(error) // ingress completion callback
}

// Node is one router's signalling agent.
type Node struct {
	name      string
	fab       *Fabric
	installer ldp.Installer
	nextLabel label.Label
	sessions  map[string]*session
}

// Signalling errors.
var (
	ErrDuplicateLSP = errors.New("signal: LSP id already in use")
	ErrBadRoute     = errors.New("signal: invalid explicit route")
	ErrSetupFailed  = errors.New("signal: setup failed")
)

// Setup initiates LSP establishment from this (ingress) node along the
// explicit route, which must start with this node. done fires when the
// mapping arrives (nil error) or a PathError unwinds the setup.
func (n *Node) Setup(id string, fec ldp.FEC, route []string, bandwidth float64, cos label.CoS, done func(error)) error {
	if _, dup := n.sessions[id]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateLSP, id)
	}
	if len(route) < 2 || route[0] != n.name {
		return fmt.Errorf("%w: %v from %s", ErrBadRoute, route, n.name)
	}
	s := &session{
		fec: fec, bandwidth: bandwidth, cos: cos,
		downstream: route[1], done: done,
	}
	if !n.reserveDownstream(s) {
		return fmt.Errorf("%w: no bandwidth on %s->%s", te.ErrBandwidth, n.name, s.downstream)
	}
	n.sessions[id] = s
	n.fab.send(n.name, s.downstream, Message{
		Type: LabelRequest, LSP: id, FEC: fec,
		Route: route[1:], Bandwidth: bandwidth, CoS: cos,
	})
	return nil
}

// Teardown releases an established LSP from the ingress: entries and
// reservations unwind hop by hop via LabelRelease messages.
func (n *Node) Teardown(id string) error {
	s, ok := n.sessions[id]
	if !ok {
		return fmt.Errorf("signal: %s has no session %q", n.name, id)
	}
	n.releaseLocal(id, s)
	if s.downstream != "" {
		n.fab.send(n.name, s.downstream, Message{Type: LabelRelease, LSP: id})
	}
	return nil
}

// Sessions returns how many LSP sessions this node holds (for tests).
func (n *Node) Sessions() int { return len(n.sessions) }

func (n *Node) allocLabel() label.Label {
	l := n.nextLabel
	n.nextLabel++
	return l
}

// reserveDownstream books the session's bandwidth on this node's
// outgoing link and records it for release.
func (n *Node) reserveDownstream(s *session) bool {
	if s.bandwidth <= 0 || s.downstream == "" {
		return true
	}
	if err := n.fab.topo.Reserve([]string{n.name, s.downstream}, s.bandwidth); err != nil {
		return false
	}
	s.reserved = true
	return true
}

func (n *Node) receive(from string, m Message) {
	switch m.Type {
	case LabelRequest:
		n.handleRequest(from, m)
	case LabelMapping:
		n.handleMapping(from, m)
	case PathError:
		n.handleError(from, m)
	case LabelRelease:
		n.handleRelease(m)
	}
}

func (n *Node) handleRequest(from string, m Message) {
	if _, dup := n.sessions[m.LSP]; dup {
		n.fab.send(n.name, from, Message{Type: PathError, LSP: m.LSP, Reason: "duplicate session at " + n.name})
		return
	}
	if len(m.Route) == 0 || m.Route[0] != n.name {
		n.fab.send(n.name, from, Message{Type: PathError, LSP: m.LSP, Reason: "misrouted request at " + n.name})
		return
	}
	s := &session{fec: m.FEC, upstream: from, bandwidth: m.Bandwidth, cos: m.CoS}

	if len(m.Route) == 1 {
		// Egress: allocate, install the pop, map upstream.
		s.inLabel = n.allocLabel()
		if err := n.installer.InstallILM(s.inLabel, swmpls.NHLFE{Op: label.OpPop}); err != nil {
			n.fab.send(n.name, from, Message{Type: PathError, LSP: m.LSP, Reason: err.Error()})
			return
		}
		s.installed = true
		n.sessions[m.LSP] = s
		n.fab.send(n.name, from, Message{Type: LabelMapping, LSP: m.LSP, Label: s.inLabel})
		return
	}

	// Transit: reserve downstream and forward the request.
	s.downstream = m.Route[1]
	if !n.reserveDownstream(s) {
		n.fab.send(n.name, from, Message{
			Type: PathError, LSP: m.LSP,
			Reason: fmt.Sprintf("no bandwidth on %s->%s", n.name, s.downstream),
		})
		return
	}
	n.sessions[m.LSP] = s
	fwd := m
	fwd.Route = m.Route[1:]
	n.fab.send(n.name, s.downstream, fwd)
}

func (n *Node) handleMapping(from string, m Message) {
	s, ok := n.sessions[m.LSP]
	if !ok || from != s.downstream {
		return // stale or misdirected mapping
	}
	if s.upstream == "" {
		// Ingress: install the FTN and report success.
		err := n.installer.InstallFEC(s.fec.Dst, s.fec.PrefixLen, swmpls.NHLFE{
			NextHop: s.downstream, Op: label.OpPush,
			PushLabels: []label.Label{m.Label}, CoS: s.cos,
		})
		if err == nil {
			s.installed = true
		}
		if s.done != nil {
			s.done(err)
		}
		return
	}
	// Transit: bind our own incoming label to a swap toward downstream.
	s.inLabel = n.allocLabel()
	err := n.installer.InstallILM(s.inLabel, swmpls.NHLFE{
		NextHop: s.downstream, Op: label.OpSwap, PushLabels: []label.Label{m.Label},
	})
	if err != nil {
		n.fab.send(n.name, s.upstream, Message{Type: PathError, LSP: m.LSP, Reason: err.Error()})
		n.releaseLocal(m.LSP, s)
		n.fab.send(n.name, s.downstream, Message{Type: LabelRelease, LSP: m.LSP})
		return
	}
	s.installed = true
	n.fab.send(n.name, s.upstream, Message{Type: LabelMapping, LSP: m.LSP, Label: s.inLabel})
}

func (n *Node) handleError(from string, m Message) {
	s, ok := n.sessions[m.LSP]
	if !ok {
		return
	}
	_ = from
	n.releaseLocal(m.LSP, s)
	if s.upstream != "" {
		n.fab.send(n.name, s.upstream, m)
	} else if s.done != nil {
		s.done(fmt.Errorf("%w: %s", ErrSetupFailed, m.Reason))
	}
}

func (n *Node) handleRelease(m Message) {
	s, ok := n.sessions[m.LSP]
	if !ok {
		return
	}
	n.releaseLocal(m.LSP, s)
	if s.downstream != "" {
		n.fab.send(n.name, s.downstream, Message{Type: LabelRelease, LSP: m.LSP})
	}
}

// releaseLocal unwinds this hop's state: forwarding entries, bandwidth
// reservation, session record.
func (n *Node) releaseLocal(id string, s *session) {
	if s.installed {
		if s.upstream == "" && s.inLabel == 0 {
			n.installer.RemoveFEC(s.fec.Dst, s.fec.PrefixLen)
		} else {
			n.installer.RemoveILM(s.inLabel)
		}
	}
	if s.reserved {
		_ = n.fab.topo.Release([]string{n.name, s.downstream}, s.bandwidth)
	}
	delete(n.sessions, id)
}
