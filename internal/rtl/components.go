package rtl

import "fmt"

// Register is a D flip-flop bank with optional enable and synchronous
// clear, mirroring the "NEW REGISTER" and similar storage elements of the
// label stack modifier data path. Clr wins over En; with En nil the
// register loads every cycle.
type Register struct {
	D   *Signal // data in
	Q   *Signal // data out
	En  *Signal // load enable (nil: always load)
	Clr *Signal // synchronous clear (nil: never)

	next uint64
}

// NewRegister builds a register and adds it to the simulator.
func NewRegister(sim *Simulator, d, q, en, clr *Signal) *Register {
	r := &Register{D: d, Q: q, En: en, Clr: clr}
	sim.Add(r)
	return r
}

// Latch captures the next value from the settled inputs.
func (r *Register) Latch() {
	switch {
	case r.Clr != nil && r.Clr.Bool():
		r.next = 0
	case r.En == nil || r.En.Bool():
		r.next = r.D.Get()
	default:
		r.next = r.Q.Get()
	}
}

// Commit drives the register output.
func (r *Register) Commit() { r.Q.Set(r.next) }

// Counter is an up/down counter with load and synchronous clear — the
// data path uses counters for the TTL, the stack item count, and the
// information base read/write addresses. Priority: Clr, then Ld, then En.
// Down counts saturate at zero (the TTL counter must not wrap).
type Counter struct {
	Q    *Signal // current count
	En   *Signal // count enable
	Down *Signal // direction: 0 increments, 1 decrements (nil: always up)
	Ld   *Signal // load enable (nil: never)
	D    *Signal // load value (required when Ld is set)
	Clr  *Signal // synchronous clear (nil: never)

	next uint64
}

// NewCounter builds a counter and adds it to the simulator.
func NewCounter(sim *Simulator, q, en, down, ld, d, clr *Signal) *Counter {
	if ld != nil && d == nil {
		panic("rtl: counter with a load enable needs a load value signal")
	}
	c := &Counter{Q: q, En: en, Down: down, Ld: ld, D: d, Clr: clr}
	sim.Add(c)
	return c
}

// Latch computes the next count.
func (c *Counter) Latch() {
	cur := c.Q.Get()
	switch {
	case c.Clr != nil && c.Clr.Bool():
		c.next = 0
	case c.Ld != nil && c.Ld.Bool():
		c.next = c.D.Get()
	case c.En != nil && c.En.Bool():
		if c.Down != nil && c.Down.Bool() {
			if cur > 0 {
				c.next = cur - 1
			} else {
				c.next = 0
			}
		} else {
			c.next = cur + 1
		}
	default:
		c.next = cur
	}
}

// Commit drives the counter output.
func (c *Counter) Commit() { c.Q.Set(c.next) }

// RAM is a synchronous-read, synchronous-write memory block like the
// index/label/operation components of the information base: the word
// addressed by RAddr appears on RData one clock edge later, and a write
// with WEn high lands on the same edge. A simultaneous read of the word
// being written returns the old contents (read-before-write ports).
type RAM struct {
	RAddr *Signal // read address
	RData *Signal // read data, 1-cycle latency
	WAddr *Signal // write address
	WData *Signal // write data
	WEn   *Signal // write enable

	mem       []uint64
	nextRData uint64
	doWrite   bool
	wAddr     uint64
	wData     uint64
}

// NewRAM builds a memory with the given number of words and adds it to
// the simulator.
func NewRAM(sim *Simulator, words int, raddr, rdata, waddr, wdata, wen *Signal) *RAM {
	if words <= 0 {
		panic(fmt.Sprintf("rtl: RAM with %d words", words))
	}
	m := &RAM{RAddr: raddr, RData: rdata, WAddr: waddr, WData: wdata, WEn: wen,
		mem: make([]uint64, words)}
	sim.Add(m)
	return m
}

// Words returns the capacity of the memory.
func (m *RAM) Words() int { return len(m.mem) }

// Peek returns the stored word at addr without simulating a read port;
// test benches use it to verify contents.
func (m *RAM) Peek(addr int) uint64 { return m.mem[addr] }

// Latch samples the read and write ports. Out-of-range addresses wrap,
// as the address bits of a physical memory would.
func (m *RAM) Latch() {
	m.nextRData = m.mem[m.RAddr.Get()%uint64(len(m.mem))]
	m.doWrite = m.WEn.Bool()
	if m.doWrite {
		m.wAddr = m.WAddr.Get() % uint64(len(m.mem))
		m.wData = m.WData.Get()
	}
}

// Commit applies the write and presents the read data.
func (m *RAM) Commit() {
	if m.doWrite {
		m.mem[m.wAddr] = m.wData
	}
	m.RData.Set(m.nextRData)
}

// Comparator registers a combinational equality comparator driving eq
// with (a == b). The data path instantiates three: 32-bit (packet
// identifier vs level-1 index), 20-bit (label vs level-2/3 index) and
// 10-bit (read vs write memory address).
func Comparator(sim *Simulator, a, b, eq *Signal) {
	sim.Comb(func() { eq.SetBool(a.Get() == b.Get()) })
}

// FSM is a finite state machine: a state register whose next value is an
// arbitrary function of the settled signals. Moore outputs are expressed
// as separate Comb processes reading State.
type FSM struct {
	State *Signal
	Next  func() uint64

	next uint64
}

// NewFSM builds a state machine and adds it to the simulator.
func NewFSM(sim *Simulator, state *Signal, next func() uint64) *FSM {
	f := &FSM{State: state, Next: next}
	sim.Add(f)
	return f
}

// Latch computes the next state.
func (f *FSM) Latch() { f.next = f.Next() }

// Commit enters the next state.
func (f *FSM) Commit() { f.State.Set(f.next) }
