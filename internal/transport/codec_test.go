package transport

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// samplePacket is the reference packet for the golden and round-trip
// tests: a two-deep label stack, measurement bookkeeping, and a payload.
func samplePacket(t testing.TB) *packet.Packet {
	t.Helper()
	p := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 9), 64, []byte("hi"))
	p.Header.Proto = 7
	p.Header.FlowID = 0x0102
	p.SeqNo = 0x0102030405060708
	p.SentAt = 1.5
	if err := p.Stack.Push(label.Entry{Label: 100, CoS: 5, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	if err := p.Stack.Push(label.Entry{Label: 17, CoS: 2, TTL: 63}); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGoldenBytes pins the wire format byte for byte. If this test
// breaks, the format changed: bump Version, don't regenerate the gold.
func TestGoldenBytes(t *testing.T) {
	const gold = "e54d0101" + // magic, version 1, flags: labelled
		"0003" + // source node 3
		"0200" + // CoS of top entry, reserved
		"0102030405060708" + // packet id (SeqNo)
		"3ff8000000000000" + // trace context (SentAt 1.5)
		"0001143f" + // top label entry: lbl=17 cos=2 S=0 ttl=63
		"00064b40" + // bottom label entry: lbl=100 cos=5 S=1 ttl=64
		"0a000001" + "0a000009" + // src, dst address
		"40" + "07" + "0102" + // TTL, proto, flow id
		"0002" + "6869" // payload length, "hi"

	p := samplePacket(t)
	enc, err := AppendPacket(nil, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(enc); got != gold {
		t.Errorf("wire bytes drifted:\n got  %s\n want %s", got, gold)
	}
	if len(enc) != EncodedSize(p) {
		t.Errorf("EncodedSize = %d, encoded %d bytes", EncodedSize(p), len(enc))
	}
}

func TestRoundTrip(t *testing.T) {
	p := samplePacket(t)
	enc, err := AppendPacket(nil, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	var got packet.Packet
	src, err := DecodePacket(&got, enc)
	if err != nil {
		t.Fatal(err)
	}
	if src != 42 {
		t.Errorf("src node = %d, want 42", src)
	}
	checkEqual(t, p, &got)
}

func TestRoundTripUnlabelled(t *testing.T) {
	p := packet.New(1, 2, 8, []byte{0xde, 0xad})
	enc, err := AppendPacket(nil, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	var got packet.Packet
	if _, err := DecodePacket(&got, enc); err != nil {
		t.Fatal(err)
	}
	checkEqual(t, p, &got)

	// Trailing bytes beyond the declared payload length are layer-2
	// padding, not part of the packet.
	padded := append(append([]byte(nil), enc...), 0, 0, 0, 0)
	if _, err := DecodePacket(&got, padded); err != nil {
		t.Fatalf("padded datagram: %v", err)
	}
	checkEqual(t, p, &got)
}

func checkEqual(t *testing.T, want, got *packet.Packet) {
	t.Helper()
	if got.Header != want.Header {
		t.Errorf("header = %+v, want %+v", got.Header, want.Header)
	}
	if !got.Stack.Equal(want.Stack) {
		t.Errorf("stack = %v, want %v", got.Stack, want.Stack)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Errorf("payload = %x, want %x", got.Payload, want.Payload)
	}
	if got.SeqNo != want.SeqNo || got.SentAt != want.SentAt {
		t.Errorf("bookkeeping = (%d, %v), want (%d, %v)",
			got.SeqNo, got.SentAt, want.SeqNo, want.SentAt)
	}
}

func TestDecodeErrors(t *testing.T) {
	p := samplePacket(t)
	enc, err := AppendPacket(nil, p, 1)
	if err != nil {
		t.Fatal(err)
	}

	var got packet.Packet
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", enc[:headerSize-1], ErrTruncated},
		{"bad magic", append([]byte{0, 0}, enc[2:]...), ErrMagic},
		{"bad version", mutate(enc, 2, 0x7f), ErrVersion},
		{"stack cut mid-entry", enc[:headerSize+2], label.ErrNoBottom},
		{"missing ip header", enc[:headerSize+2*label.EntrySize+3], ErrTruncated},
		{"payload length beyond buffer", enc[:len(enc)-1], ErrTruncated},
	}
	for _, tc := range cases {
		if _, err := DecodePacket(&got, tc.buf); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func mutate(buf []byte, i int, b byte) []byte {
	out := append([]byte(nil), buf...)
	out[i] = b
	return out
}

func TestOversizedPayloadRejected(t *testing.T) {
	p := packet.New(1, 2, 8, make([]byte, 0x10000))
	if _, err := AppendPacket(nil, p, 0); err == nil {
		t.Fatal("expected error for payload exceeding the length field")
	}
}

// TestCodecAllocs pins the steady-state promise: with capacity in the
// destination buffer and a reused target packet, neither direction
// allocates.
func TestCodecAllocs(t *testing.T) {
	p := samplePacket(t)
	buf := make([]byte, 0, MaxDatagram)
	enc, err := AppendPacket(buf, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got packet.Packet
	if _, err := DecodePacket(&got, enc); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(100, func() {
		if _, err := AppendPacket(buf[:0], p, 1); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("encode allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, err := DecodePacket(&got, enc); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("decode allocates %v per op, want 0", n)
	}
}

// FuzzWireDecode feeds arbitrary bytes to the decoder: it must reject
// or accept, never panic, and anything it accepts must re-encode.
func FuzzWireDecode(f *testing.F) {
	p := samplePacket(f)
	enc, err := AppendPacket(nil, p, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Add(enc[:headerSize])
	f.Add([]byte{magic0, magic1, Version, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var got packet.Packet
		src, err := DecodePacket(&got, data)
		if err != nil {
			return
		}
		if _, err := AppendPacket(nil, &got, src); err != nil {
			t.Fatalf("accepted datagram failed to re-encode: %v", err)
		}
	})
}

// FuzzWireRoundTrip drives the encoder with arbitrary packet fields and
// checks decode(encode(p)) == p.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint32(0x0a000001), uint32(0x0a000009), uint8(64), uint8(7),
		uint16(1), uint64(9), 1.5, []byte("hi"), uint32(100<<12|5<<9|64), true)
	f.Fuzz(func(t *testing.T, src, dst uint32, ttl, proto uint8, flow uint16,
		seq uint64, sentAt float64, payload []byte, entryBits uint32, labelled bool) {
		if len(payload) > 0xffff {
			payload = payload[:0xffff]
		}
		p := packet.New(packet.Addr(src), packet.Addr(dst), ttl, payload)
		p.Header.Proto = proto
		p.Header.FlowID = flow
		p.SeqNo = seq
		p.SentAt = sentAt
		if labelled {
			e := label.Unpack(entryBits)
			if err := p.Stack.Push(e); err != nil {
				return // entry not encodable (reserved/invalid): nothing to test
			}
		}
		enc, err := AppendPacket(nil, p, 7)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		var got packet.Packet
		srcID, err := DecodePacket(&got, enc)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if srcID != 7 {
			t.Errorf("src = %d, want 7", srcID)
		}
		if got.Header != p.Header || !got.Stack.Equal(p.Stack) ||
			!bytes.Equal(got.Payload, p.Payload) || got.SeqNo != p.SeqNo {
			t.Errorf("round trip mismatch: got %+v, want %+v", got, *p)
		}
		// NaN trace contexts may not compare equal; compare the bits.
		if math.Float64bits(got.SentAt) != math.Float64bits(p.SentAt) {
			t.Errorf("SentAt bits = %x, want %x",
				math.Float64bits(got.SentAt), math.Float64bits(p.SentAt))
		}
	})
}
