// Example dataplane builds the 4-node line of the basic LSP scenario —
// ingress LER, two transit LSRs, egress LER — but runs every node as a
// concurrent forwarding engine with 4 shard workers, chained through
// their batch egress sinks: a worker on one node flushes its staged
// egress ring straight into the next node's shard queues, whole
// batches at a time, like line cards pushing onto a backplane. 100k
// packets across 256 flows enter unlabelled, get a label pushed,
// swapped twice, popped, and counted at the far end.
package main

import (
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

const (
	workers = 4
	flows   = 256
	count   = 100_000
)

func main() {
	dst := packet.AddrFrom(10, 0, 0, 9)
	var received atomic.Uint64

	// Build back to front so each node can hand off to the next.
	egress := newNode("egress", counter{&received})
	lsr2 := newNode("lsr2", handoff{egress})
	lsr1 := newNode("lsr1", handoff{lsr2})
	ingress := newNode("ingress", handoff{lsr1})
	nodes := []*node{ingress, lsr1, lsr2, egress}

	// Program the LSP: push 100 at the ingress, swap 100->200->300
	// through the transits, pop at the egress (empty next hop = deliver).
	check(ingress.eng.InstallFEC(dst, 32, swmpls.NHLFE{
		NextHop: "lsr1", Op: label.OpPush, PushLabels: []label.Label{100},
	}))
	check(lsr1.eng.InstallILM(100, swmpls.NHLFE{
		NextHop: "lsr2", Op: label.OpSwap, PushLabels: []label.Label{200},
	}))
	check(lsr2.eng.InstallILM(200, swmpls.NHLFE{
		NextHop: "egress", Op: label.OpSwap, PushLabels: []label.Label{300},
	}))
	check(egress.eng.InstallILM(300, swmpls.NHLFE{Op: label.OpPop}))

	fmt.Printf("4-node line, %d shard workers per node, %d packets over %d flows\n\n",
		workers, count, flows)
	start := time.Now()
	one := make([]*packet.Packet, 1)
	for i := 0; i < count; i++ {
		p := packet.New(packet.AddrFrom(192, 0, 2, byte(i%flows)), dst, 64, nil)
		p.Header.FlowID = uint16(i % flows)
		one[0] = p
		ingress.eng.Submit(one, dataplane.SubmitOpts{Wait: true})
	}
	// Close front to back: each Close drains that node's queues, so
	// everything in flight lands before the next node shuts.
	for _, n := range nodes {
		n.eng.Close()
	}
	elapsed := time.Since(start)

	fmt.Printf("%-8s %10s %10s %10s %12s\n", "node", "processed", "fwd", "qdrop", "busy(max)")
	for _, n := range nodes {
		snap := n.eng.Snapshot()
		var busiest float64
		for _, b := range snap.WorkerBusy {
			if b > busiest {
				busiest = b
			}
		}
		fmt.Printf("%-8s %10d %10d %10d %11.1fms\n",
			n.name, snap.Processed(), snap.Forwarded.Events, snap.QueueDropped, busiest*1e3)
	}
	fmt.Printf("\ndelivered %d/%d packets in %v (%.0f pkts/sec end to end, 4 label ops each)\n",
		received.Load(), count, elapsed.Round(time.Millisecond),
		float64(received.Load())/elapsed.Seconds())

	// The same data in scrapeable form: every node registers into one
	// registry (distinguished by its node label), exactly as a metrics
	// endpoint would serve them. The ingress alone keeps the example's
	// output readable; swap in the loop over nodes to see the whole line.
	fmt.Println("\nPrometheus exposition (ingress node):")
	reg := telemetry.NewRegistry()
	ingress.eng.RegisterMetrics(reg, telemetry.Labels{"example": "line"})
	check(reg.WriteText(os.Stdout))
}

type node struct {
	name string
	eng  *dataplane.Engine
}

func newNode(name string, sink dataplane.Egress) *node {
	return &node{name: name, eng: dataplane.New(
		dataplane.WithWorkers(workers),
		dataplane.WithNode(name),
		dataplane.WithEgress(sink),
	)}
}

// handoff forwards one node's flushed egress batches into the next
// node's queues, blocking for space so the line applies backpressure
// instead of loss.
type handoff struct{ next *node }

func (h handoff) Flush(_ string, ps []*packet.Packet) {
	h.next.eng.Submit(ps, dataplane.SubmitOpts{Wait: true})
}
func (h handoff) Deliver([]*packet.Packet) {}
func (h handoff) Discard([]*packet.Packet, []swmpls.DropReason) {}

// counter tallies the packets the egress LER delivers to the IP side.
type counter struct{ received *atomic.Uint64 }

func (c counter) Flush(string, []*packet.Packet) {}
func (c counter) Deliver(ps []*packet.Packet)    { c.received.Add(uint64(len(ps))) }
func (c counter) Discard([]*packet.Packet, []swmpls.DropReason) {}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
