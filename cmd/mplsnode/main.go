// mplsnode runs ONE router of a declarative scenario as its own OS
// process, exchanging labeled packets — and the label signaling that
// installs them — with the scenario's other nodes over UDP sockets. It
// is the distributed counterpart of mplssim, which runs the whole
// topology in one simulator.
//
// Every process loads the same scenario file but builds only its own
// router, with sockets wired per the scenario's transport section. No
// process assumes another's label tables: LDP-style sessions form over
// the wire to the physical neighbours, LSPs whose ingress is this node
// are signalled hop by hop, and transit/egress label state arrives as
// LABEL MAPPING messages from peers. Kill a node mid-run and its
// neighbours' dead timers tear the crossing LSPs; an ingress resignals
// around the hole:
//
//	mplsnode -config scenario.json -node a &
//	mplsnode -config scenario.json -node b
//
// Traffic generators run only on the process that owns their source
// node; delivery statistics print on the process that owns the LSP
// egress. The run lasts -duration wall-clock seconds (default: the
// scenario duration plus half a second of drain slack).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mplsnode: ")
	configPath := flag.String("config", "", "JSON scenario file with a transport section (required)")
	node := flag.String("node", "", "name of the router this process runs (required)")
	duration := flag.Float64("duration", 0, "wall-clock seconds to run (default scenario duration + 0.5s)")
	coalesce := flag.Int("coalesce", 0, "packets per datagram on inter-process links (overrides scenario transport section)")
	sysBatch := flag.Int("sysbatch", 0, "datagrams per send/receive syscall (overrides scenario transport section)")
	flag.Parse()
	if *configPath == "" || *node == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	if scenario.Transport != nil {
		if *coalesce > 0 {
			scenario.Transport.Coalesce = *coalesce
		}
		if *sysBatch > 0 {
			scenario.Transport.SysBatch = *sysBatch
		}
	}

	b, err := scenario.BuildNode(*node)
	if err != nil {
		log.Fatal(err)
	}
	defer b.Net.Close()
	var drops telemetry.DropCounters
	b.Net.SetTelemetry(telemetry.Sink{Drops: &drops})

	// Narrate the control plane as it converges; the hooks run in the
	// delivery path, under this node's network lock.
	b.Net.Lock()
	b.Speaker.OnSessionUp = func(peer string) {
		fmt.Printf("t=%.3fs session to %s up\n", b.Net.Sim.Now(), peer)
	}
	b.Speaker.OnSessionDown = func(peer string) {
		fmt.Printf("t=%.3fs session to %s DOWN\n", b.Net.Sim.Now(), peer)
	}
	b.Speaker.OnEstablished = func(id string, path []string) {
		fmt.Printf("t=%.3fs LSP %q established via %v\n", b.Net.Sim.Now(), id, path)
	}
	b.Net.Unlock()

	d := *duration
	if d <= 0 {
		d = scenario.DurationS + 0.5
	}
	fmt.Printf("node %s up (scenario %q, %.2fs, signaling to %v)\n",
		*node, scenario.Name, d, b.Speaker.Peers())
	b.Net.RunReal(d)

	b.Net.Lock()
	defer b.Net.Unlock()
	fmt.Printf("node %s done: %v\n", *node, b.Net.Router(*node))
	for _, id := range b.Collector.FlowIDs() {
		fs := b.Collector.Flow(id)
		fmt.Printf("  flow %d: sent=%d delivered=%d loss=%.2f%% latency %s\n",
			id, fs.Sent.Events, fs.Delivered.Events, 100*fs.LossRate(),
			fs.Latency.Summary("ms", 1e3))
	}
	fmt.Printf("  %v\n", b.Net.Wire)
	fmt.Printf("  %v\n", b.Events)
	if drops.Total() > 0 {
		fmt.Printf("  %v\n", &drops)
	}
}
