package trafficgen

import (
	"math"
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/telemetry"
)

var dst = packet.AddrFrom(10, 0, 0, 5)

// twoNode builds src--dst routers with an LSP between them and a
// collector attached at the destination.
func twoNode(t *testing.T, rateBPS float64) (*router.Network, *Collector) {
	t.Helper()
	n, err := router.Build(
		[]router.NodeSpec{{Name: "src"}, {Name: "dst"}},
		[]router.LinkSpec{{A: "src", B: "dst", RateBPS: rateBPS, Delay: 0.001, QueueCap: 512}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "lsp",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"src", "dst"},
	}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(n.Sim)
	c.Attach(n.Router("dst"))
	return n, c
}

func TestCBRPacketCount(t *testing.T) {
	n, c := twoNode(t, 10e6)
	g := CBR{Flow: Flow{ID: 1, Dst: dst}, Size: 100, Interval: 0.010, Start: 0, Stop: 0.995}
	g.Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()
	f := c.Flow(1)
	// Ticks at 0, 0.01, ..., 0.99: 100 packets.
	if f.Sent.Events != 100 {
		t.Errorf("sent = %d, want 100", f.Sent.Events)
	}
	if f.Delivered.Events != 100 {
		t.Errorf("delivered = %d, want 100", f.Delivered.Events)
	}
	if f.LossRate() != 0 {
		t.Errorf("loss = %v", f.LossRate())
	}
	// Latency = engine + serialisation + propagation, well under 10 ms,
	// and every packet sees the same uncongested path.
	if f.Latency.Max() > 0.005 || f.Latency.Min() <= 0.001 {
		t.Errorf("latency range [%v, %v] implausible", f.Latency.Min(), f.Latency.Max())
	}
}

func TestVoIPPreset(t *testing.T) {
	g := VoIP(Flow{ID: 2, Dst: dst}, 0, 1)
	if g.Size != 160 || g.Interval != 0.020 {
		t.Errorf("VoIP preset = %+v", g)
	}
	if !strings.Contains(g.Describe(), "CBR") {
		t.Errorf("describe = %q", g.Describe())
	}
}

func TestPoissonRateAndDeterminism(t *testing.T) {
	counts := make([]uint64, 2)
	for trial := range counts {
		n, c := twoNode(t, 100e6)
		g := Poisson{Flow: Flow{ID: 3, Dst: dst}, Size: 100, RatePPS: 1000, Stop: 2, Seed: 7}
		g.Install(n.Sim, n.Router("src"), c)
		n.Sim.Run()
		counts[trial] = c.Flow(3).Sent.Events
	}
	if counts[0] != counts[1] {
		t.Errorf("same seed produced %d and %d packets", counts[0], counts[1])
	}
	// ~2000 expected; 4 sigma is ~180.
	if math.Abs(float64(counts[0])-2000) > 200 {
		t.Errorf("poisson sent %d packets over 2s at 1000pps", counts[0])
	}
}

func TestOnOffDutyCycle(t *testing.T) {
	n, c := twoNode(t, 100e6)
	// 1 Mbps peak, 100 ms on / 100 ms off over 1s -> ~0.5 Mbit total.
	g := OnOff{Flow: Flow{ID: 4, Dst: dst}, Size: 488, PeakBPS: 1e6, On: 0.1, Off: 0.1, Stop: 0.999}
	g.Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()
	f := c.Flow(4)
	bits := float64(f.Sent.Bytes) * 8
	if bits < 0.35e6 || bits > 0.65e6 {
		t.Errorf("on/off sent %.0f bits, want ~0.5e6", bits)
	}
}

func TestBulkRate(t *testing.T) {
	n, c := twoNode(t, 100e6)
	g := Bulk{Flow: Flow{ID: 5, Dst: dst}, Size: 1188, RateBPS: 8e6, Stop: 0.9999}
	g.Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()
	f := c.Flow(5)
	bits := float64(f.Sent.Bytes) * 8
	// 8 Mbps for 1 s (wire size accounting makes it slightly under).
	if bits < 7.5e6 || bits > 8.5e6 {
		t.Errorf("bulk sent %.2g bits in 1s at 8 Mbps", bits)
	}
}

func TestCongestionCausesLossAndQueueing(t *testing.T) {
	// 2 Mbps of offered load into a 1 Mbps link with a shallow queue:
	// a large share must be lost and latency must blow up relative to an
	// idle path.
	n, err := router.Build(
		[]router.NodeSpec{{Name: "src"}, {Name: "dst"}},
		[]router.LinkSpec{{A: "src", B: "dst", RateBPS: 1e6, Delay: 0.001, QueueCap: 16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "lsp",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"src", "dst"},
	}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(n.Sim)
	c.Attach(n.Router("dst"))
	g := Bulk{Flow: Flow{ID: 6, Dst: dst}, Size: 988, RateBPS: 2e6, Stop: 0.999}
	g.Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()
	f := c.Flow(6)
	if f.LossRate() < 0.3 {
		t.Errorf("loss = %v under 2x overload", f.LossRate())
	}
	if f.Latency.Max() < 0.01 {
		t.Errorf("max latency %v shows no queueing", f.Latency.Max())
	}
}

func TestCollectorBookkeeping(t *testing.T) {
	sim := netsim.New()
	c := NewCollector(sim)
	_ = c.Flow(9) // allocate empty record
	if ids := c.FlowIDs(); len(ids) != 1 || ids[0] != 9 {
		t.Errorf("flow ids = %v", ids)
	}
	if c.Flow(9).Sent.Events != 0 {
		t.Error("fresh flow should be empty")
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	sim := netsim.New()
	r := router.New(sim, "r", router.NewSoftwarePlane(0))
	c := NewCollector(sim)
	for name, f := range map[string]func(){
		"cbr":     func() { CBR{Interval: 0}.Install(sim, r, c) },
		"poisson": func() { Poisson{RatePPS: 0}.Install(sim, r, c) },
		"onoff":   func() { OnOff{}.Install(sim, r, c) },
		"bulk":    func() { Bulk{}.Install(sim, r, c) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDescribeAll(t *testing.T) {
	gens := []Generator{
		CBR{Flow: Flow{ID: 1}, Size: 1, Interval: 1},
		Poisson{Flow: Flow{ID: 2}, RatePPS: 1},
		OnOff{Flow: Flow{ID: 3}, PeakBPS: 1, On: 1},
		Bulk{Flow: Flow{ID: 4}, RateBPS: 1},
	}
	for _, g := range gens {
		if g.Describe() == "" {
			t.Errorf("%T has empty description", g)
		}
	}
}

func TestSeriesTracking(t *testing.T) {
	n, _ := twoNode(t, 10e6)
	c := NewCollector(n.Sim)
	c.TrackSeries(0.1)
	c.Attach(n.Router("dst"))
	CBR{Flow: Flow{ID: 9, Dst: dst}, Size: 100, Interval: 0.010, Stop: 0.499}.
		Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()
	s := c.Series(9)
	if s == nil {
		t.Fatal("no series recorded")
	}
	bins := s.Bins()
	if len(bins) < 5 {
		t.Fatalf("%d bins", len(bins))
	}
	// Steady CBR: every full bin carries ~10 packets.
	for i, b := range bins[:5] {
		if b.Count < 9 || b.Count > 11 {
			t.Errorf("bin %d count = %d", i, b.Count)
		}
	}
	if c.Series(42) != nil {
		t.Error("series for an unseen flow should be nil")
	}
	// Tracking disabled: Series returns nil.
	c2 := NewCollector(n.Sim)
	if c2.Series(9) != nil {
		t.Error("series without tracking should be nil")
	}
}

// TestQueueFullDropsVisibleToFlowStats covers the fixed accounting gap:
// queue-overfull drops at a congested link used to be counted only in
// the link scheduler's aggregate, leaving FlowStats.Dropped at zero and
// Sent != Delivered + Dropped. With the collector watching the link,
// every offered packet is attributed to its flow exactly once.
func TestQueueFullDropsVisibleToFlowStats(t *testing.T) {
	n, err := router.Build(
		[]router.NodeSpec{{Name: "src"}, {Name: "dst"}},
		[]router.LinkSpec{{A: "src", B: "dst", RateBPS: 1e6, Delay: 0.001, QueueCap: 8}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID:   "lsp",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"src", "dst"},
	}); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(n.Sim)
	c.Attach(n.Router("dst"))
	c.WatchRouter(n.Router("src"))

	// 4 Mbps into a 1 Mbps link with an 8-packet queue: heavy loss.
	Bulk{Flow: Flow{ID: 11, Dst: dst}, Size: 988, RateBPS: 4e6, Stop: 0.999}.
		Install(n.Sim, n.Router("src"), c)
	n.Sim.Run()

	f := c.Flow(11)
	if f.Dropped.Events == 0 {
		t.Fatal("queue-full drops still invisible to FlowStats")
	}
	if f.Sent.Events != f.Delivered.Events+f.Dropped.Events {
		t.Errorf("sent %d != delivered %d + dropped %d",
			f.Sent.Events, f.Delivered.Events, f.Dropped.Events)
	}
	// The collector's reason accounting and the link scheduler's own
	// drop count must agree.
	link, ok := n.Router("src").SimLink("dst")
	if !ok {
		t.Fatal("no src->dst link")
	}
	if got := c.Drops.Get(telemetry.ReasonQueueOverfull); got != link.Queue().Dropped() {
		t.Errorf("collector counted %d queue drops, scheduler %d", got, link.Queue().Dropped())
	}
	if got := c.Drops.Total(); got != f.Dropped.Events {
		t.Errorf("reason total %d, flow dropped %d", got, f.Dropped.Events)
	}
}
