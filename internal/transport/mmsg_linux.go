//go:build linux && (amd64 || arm64)

package transport

import (
	"syscall"
	"unsafe"
)

// Batched UDP syscalls: sendmmsg(2) and recvmmsg(2) move up to N
// datagrams per kernel crossing, which is where the wire path's 75×
// gap against the in-memory codec lived — every datagram used to cost
// one syscall each way. The standard library's frozen syscall tables
// predate both calls, and this build deliberately carries no external
// modules, so the numbers live in mmsg_nums_<arch>.go and the calls go
// through syscall.Syscall6 on the raw connection's file descriptor.
//
// All per-call state (mmsghdr and iovec arrays) is preallocated in
// mmsgIO, so steady-state batched sends and receives allocate nothing.

// haveMmsg gates the batched syscall path; the fallback in
// mmsg_stub.go loops single-datagram reads and writes instead.
const haveMmsg = true

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. The trailing pad keeps the 64-bit layout explicit.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// mmsgIO is the preallocated scatter/gather state for one socket
// direction, sized once for the configured syscall batch.
type mmsgIO struct {
	msgs []mmsghdr
	iovs []syscall.Iovec
	// n is the live message count for the pending syscall; done counts
	// messages already sent when a sendmmsg needs resuming.
	n, done int
}

func newMmsgIO(batch int) *mmsgIO {
	return &mmsgIO{msgs: make([]mmsghdr, batch), iovs: make([]syscall.Iovec, batch)}
}

// load points the scatter/gather arrays at bufs; each buffer is one
// datagram. For receives the buffers must be full-length; for sends
// they must hold exactly the bytes to write.
func (io *mmsgIO) load(bufs [][]byte) {
	io.n = len(bufs)
	io.done = 0
	for i := range bufs {
		b := bufs[i]
		io.iovs[i].Base = &b[0]
		io.iovs[i].SetLen(len(b))
		io.msgs[i].hdr.Iov = &io.iovs[i]
		io.msgs[i].hdr.Iovlen = 1
		io.msgs[i].len = 0
	}
}

// sendStep issues one sendmmsg for the not-yet-sent tail of the loaded
// batch. It reports how many datagrams that call moved and the errno
// (0 on success); the raw-conn write loop retries on EAGAIN.
func (io *mmsgIO) sendStep(fd uintptr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&io.msgs[io.done])), uintptr(io.n-io.done), 0, 0, 0)
	if errno != 0 {
		return 0, errno
	}
	io.done += int(n)
	return int(n), 0
}

// recvStep issues one recvmmsg filling up to the loaded batch and
// reports how many datagrams arrived.
func (io *mmsgIO) recvStep(fd uintptr) (int, syscall.Errno) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&io.msgs[0])), uintptr(io.n), 0, 0, 0)
	if errno != 0 {
		return 0, errno
	}
	return int(n), 0
}

// size returns the kernel-reported length of received datagram i.
func (io *mmsgIO) size(i int) int { return int(io.msgs[i].len) }
