package resilience

import (
	"fmt"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/telemetry"
)

// ProbeFlowID marks keepalive probe packets; the routers' control sink
// claims them before delivery statistics, so liveness traffic never
// pollutes flow accounting.
const ProbeFlowID uint16 = 0xfdfa

// MonitorConfig parameterises link liveness probing.
type MonitorConfig struct {
	// Interval between probes per watched adjacency (seconds). <=0: 0.01.
	Interval float64
	// MissThreshold is the number of consecutive unanswered probes that
	// declares the adjacency down. <=0: 3.
	MissThreshold int
	// Until, when >0, stops probe scheduling at that simulated time so a
	// bounded scenario's event queue can drain. 0 probes forever (stop
	// with Stop).
	Until float64
	// Events and Timeline are optional observation sinks.
	Events   *telemetry.EventCounters
	Timeline *Timeline
}

func (c MonitorConfig) withDefaults() MonitorConfig {
	if c.Interval <= 0 {
		c.Interval = 0.01
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	return c
}

// Monitor sends keepalive probes over watched adjacencies and declares
// them down after MissThreshold consecutive misses — the failure
// detector of the self-healing loop. Probes are real packets: they ride
// the same links as traffic, so whatever kills traffic kills probes.
type Monitor struct {
	clock Clock
	net   *router.Network
	cfg   MonitorConfig

	adjacencies map[adjKey]*adjacency
	ctrlAddrs   map[string]packet.Addr // router -> control address
	byAddr      map[packet.Addr]string
	stopped     bool

	// OnDown fires when an adjacency is declared down; OnUp when probes
	// flow again over a previously declared-down adjacency. Both are
	// called from probe-tick events on the injected clock.
	OnDown func(a, b string)
	OnUp   func(a, b string)
}

type adjKey struct{ a, b string }

type adjacency struct {
	a, b    string
	pending int // probes sent since the last arrival
	down    bool
}

// NewMonitor builds a liveness monitor over the network.
func NewMonitor(net *router.Network, clock Clock, cfg MonitorConfig) *Monitor {
	return &Monitor{
		clock:       clock,
		net:         net,
		cfg:         cfg.withDefaults(),
		adjacencies: make(map[adjKey]*adjacency),
		ctrlAddrs:   make(map[string]packet.Addr),
		byAddr:      make(map[packet.Addr]string),
	}
}

// Watch starts probing the directed a->b adjacency: probes injected on
// a's link toward b, claimed by b's control sink. Watch both directions
// to cover a duplex connection. Watching must precede Start-independent
// use; probing begins on the next Start tick, or immediately if the
// monitor is already running.
func (m *Monitor) Watch(a, b string) error {
	ra, ok := m.net.Routers[a]
	if !ok {
		return fmt.Errorf("resilience: unknown node %q", a)
	}
	if _, ok := ra.Link(b); !ok {
		return fmt.Errorf("resilience: no link %s->%s", a, b)
	}
	if _, ok := m.net.Routers[b]; !ok {
		return fmt.Errorf("resilience: unknown node %q", b)
	}
	key := adjKey{a, b}
	if _, dup := m.adjacencies[key]; dup {
		return nil
	}
	m.ctrl(a)
	m.ctrl(b)
	adj := &adjacency{a: a, b: b}
	m.adjacencies[key] = adj
	m.clock.Schedule(0, func() { m.tick(adj) })
	return nil
}

// WatchBoth watches both directions of the a-b connection.
func (m *Monitor) WatchBoth(a, b string) error {
	if err := m.Watch(a, b); err != nil {
		return err
	}
	return m.Watch(b, a)
}

// Stop halts all probing after the current tick round.
func (m *Monitor) Stop() { m.stopped = true }

// Down reports whether the directed a->b adjacency is currently
// declared down.
func (m *Monitor) Down(a, b string) bool {
	adj, ok := m.adjacencies[adjKey{a, b}]
	return ok && adj.down
}

// ctrl allocates (once) the control address for a router, registers it
// as local, and installs the probe-claiming control sink.
func (m *Monitor) ctrl(name string) packet.Addr {
	if addr, ok := m.ctrlAddrs[name]; ok {
		return addr
	}
	i := len(m.ctrlAddrs) + 1
	addr := packet.AddrFrom(240, 0, byte(i>>8), byte(i))
	m.ctrlAddrs[name] = addr
	m.byAddr[addr] = name
	r := m.net.Router(name)
	r.AddLocal(addr)
	r.AddControlSink(func(p *packet.Packet) bool {
		if p.Header.FlowID != ProbeFlowID {
			return false
		}
		m.probeArrived(p)
		return true
	})
	return addr
}

// tick is one probe interval for an adjacency: account the previous
// probe's fate, declare transitions, send the next probe, reschedule.
func (m *Monitor) tick(adj *adjacency) {
	if m.stopped || (m.cfg.Until > 0 && m.clock.Now() >= m.cfg.Until) {
		return
	}
	if adj.pending > 0 {
		// The previous probe never arrived.
		if m.cfg.Events != nil {
			m.cfg.Events.Inc(telemetry.EventKeepaliveMiss)
		}
		if adj.pending >= m.cfg.MissThreshold && !adj.down {
			adj.down = true
			if m.cfg.Events != nil {
				m.cfg.Events.Inc(telemetry.EventLinkFlap)
			}
			if m.cfg.Timeline != nil {
				m.cfg.Timeline.Add(m.clock.Now(), "monitor: %s->%s down (%d probes missed)",
					adj.a, adj.b, adj.pending)
			}
			if m.OnDown != nil {
				m.OnDown(adj.a, adj.b)
			}
		}
	}
	m.sendProbe(adj)
	m.clock.Schedule(m.cfg.Interval, func() { m.tick(adj) })
}

func (m *Monitor) sendProbe(adj *adjacency) {
	l, ok := m.net.Router(adj.a).Link(adj.b)
	if !ok {
		return
	}
	p := packet.New(m.ctrlAddrs[adj.a], m.ctrlAddrs[adj.b], 8, nil)
	p.Header.FlowID = ProbeFlowID
	p.SentAt = m.clock.Now()
	adj.pending++
	l.Send(p)
}

// probeArrived resets the miss counter of the probed adjacency and
// declares recovery if it had been down.
func (m *Monitor) probeArrived(p *packet.Packet) {
	from, ok := m.byAddr[p.Header.Src]
	if !ok {
		return
	}
	to, ok := m.byAddr[p.Header.Dst]
	if !ok {
		return
	}
	adj, ok := m.adjacencies[adjKey{from, to}]
	if !ok {
		return
	}
	adj.pending = 0
	if adj.down {
		adj.down = false
		if m.cfg.Timeline != nil {
			m.cfg.Timeline.Add(m.clock.Now(), "monitor: %s->%s up (probe arrived)", adj.a, adj.b)
		}
		if m.OnUp != nil {
			m.OnUp(adj.a, adj.b)
		}
	}
}
