//go:build !linux

package transport

import (
	"errors"
	"syscall"
)

// errNoReusePort gates ListenSharded on platforms where this package
// does not wire SO_REUSEPORT; single-socket listening still works.
var errNoReusePort = errors.New("transport: SO_REUSEPORT sharding unsupported on this platform")

func reusePortControl(network, address string, c syscall.RawConn) error {
	return errNoReusePort
}
