package dataplane

import (
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// Egress is the engine's batch egress contract — the batch-first
// replacement for the old per-packet deliver callback. Each shard
// worker accumulates processed packets into per-(shard, next-hop)
// staging rings and hands them to the sink a batch at a time, so a
// sink backed by a wire rides its SendBatch path with no per-packet
// interface crossing.
//
// All three methods run on worker goroutines — concurrently across
// shards, sequentially (and in per-flow order) within one — so an
// implementation must be safe for concurrent use. Every slice argument
// is shard-owned and reused after the call returns: a sink that needs
// the packets beyond the call must copy the slice (the packets
// themselves are handed over and never touched by the engine again).
type Egress interface {
	// Flush receives a batch of forwarded packets, all bound for the
	// same next hop, in processing order.
	Flush(nextHop string, ps []*packet.Packet)
	// Deliver receives packets whose label stack emptied here — the
	// IP-side handoff at the LSP egress.
	Deliver(ps []*packet.Packet)
	// Discard receives packets the engine dropped, with reasons[i]
	// explaining ps[i]. The engine has already counted the drops in its
	// own snapshot and reason taxonomy; the sink sees them so node-level
	// accounting (a router's per-reason counters) can stay consistent.
	Discard(ps []*packet.Packet, reasons []swmpls.DropReason)
}

// Egress flush triggers, indexed into shard.egFlush.
const (
	egressTriggerSize = iota // a staging ring reached the flush size
	egressTriggerTimer       // the flush interval expired with the queue idle
	egressTriggerClose       // the engine closed and the rings drained
	numEgressTriggers
)

// egressRing is one (shard, next-hop) staging ring. It is owned by
// exactly one worker — per-shard staging is what makes the whole pump
// lock-free — and its backing array is reused across flushes.
type egressRing struct {
	nextHop string
	ps      []*packet.Packet
}

// egressStage is a worker's private staging state: forwarded packets
// ring per next hop, delivered and discarded packets batch in their
// own buffers. Nothing here is shared; the only cross-thread artifacts
// are the shard's atomic flush counters and batch-size histogram.
type egressStage struct {
	s       *shard
	flushN  int
	rings   map[string]*egressRing
	order   []*egressRing // flush order, avoids map iteration
	deliver []*packet.Packet
	drops   []*packet.Packet
	reasons []swmpls.DropReason
	pending int // total packets staged across all buffers
}

func newEgressStage(s *shard, flushN int) *egressStage {
	return &egressStage{
		s:      s,
		flushN: flushN,
		rings:  make(map[string]*egressRing),
	}
}

// stage routes one processed packet into the right staging buffer and
// flushes that buffer if it reached the flush size.
func (st *egressStage) stage(sink Egress, p *packet.Packet, res swmpls.Result) {
	switch res.Action {
	case swmpls.Forward:
		r := st.rings[res.NextHop]
		if r == nil {
			r = &egressRing{nextHop: res.NextHop, ps: make([]*packet.Packet, 0, st.flushN)}
			st.rings[res.NextHop] = r
			st.order = append(st.order, r)
		}
		r.ps = append(r.ps, p)
		st.pending++
		if len(r.ps) >= st.flushN {
			st.flushRing(sink, r, egressTriggerSize)
		}
	case swmpls.Deliver:
		st.deliver = append(st.deliver, p)
		st.pending++
		if len(st.deliver) >= st.flushN {
			st.flushDeliver(sink, egressTriggerSize)
		}
	default:
		st.drops = append(st.drops, p)
		st.reasons = append(st.reasons, res.Drop)
		st.pending++
		if len(st.drops) >= st.flushN {
			st.flushDrops(sink, egressTriggerSize)
		}
	}
}

func (st *egressStage) flushRing(sink Egress, r *egressRing, trigger int) {
	if len(r.ps) == 0 {
		return
	}
	if sink != nil {
		sink.Flush(r.nextHop, r.ps)
		st.s.observeEgress(len(r.ps), trigger)
	}
	st.pending -= len(r.ps)
	r.ps = r.ps[:0]
}

func (st *egressStage) flushDeliver(sink Egress, trigger int) {
	if len(st.deliver) == 0 {
		return
	}
	if sink != nil {
		sink.Deliver(st.deliver)
		st.s.observeEgress(len(st.deliver), trigger)
	}
	st.pending -= len(st.deliver)
	st.deliver = st.deliver[:0]
}

func (st *egressStage) flushDrops(sink Egress, trigger int) {
	if len(st.drops) == 0 {
		return
	}
	if sink != nil {
		sink.Discard(st.drops, st.reasons)
		st.s.observeEgress(len(st.drops), trigger)
	}
	st.pending -= len(st.drops)
	st.drops = st.drops[:0]
	st.reasons = st.reasons[:0]
}

// flushAll empties every staging buffer — the timer and close paths.
// A nil sink (detached mid-run) just releases the references; the
// packets were already accounted when they were processed.
func (st *egressStage) flushAll(sink Egress, trigger int) {
	for _, r := range st.order {
		st.flushRing(sink, r, trigger)
	}
	st.flushDeliver(sink, trigger)
	st.flushDrops(sink, trigger)
}
