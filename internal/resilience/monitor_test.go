package resilience

import (
	"testing"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

func TestMonitorNoFalsePositives(t *testing.T) {
	n := diamondNet(t)
	var ev telemetry.EventCounters
	m := NewMonitor(n, n.Sim, MonitorConfig{Interval: 0.01, Until: 0.5, Events: &ev})
	m.OnDown = func(a, b string) { t.Errorf("spurious down %s->%s", a, b) }
	if err := m.WatchBoth("a", "b"); err != nil {
		t.Fatal(err)
	}
	n.Sim.Run()
	if got := ev.Get(telemetry.EventKeepaliveMiss); got != 0 {
		t.Errorf("keepalive_miss = %d on a healthy link", got)
	}
	if m.Down("a", "b") || m.Down("b", "a") {
		t.Error("healthy adjacency declared down")
	}
}

func TestMonitorDetectsDownAndRecovery(t *testing.T) {
	n := diamondNet(t)
	var ev telemetry.EventCounters
	tl := &Timeline{}
	m := NewMonitor(n, n.Sim, MonitorConfig{
		Interval: 0.01, MissThreshold: 3, Until: 1.0, Events: &ev, Timeline: tl,
	})
	type edge struct{ a, b string }
	downs := map[edge]float64{}
	ups := map[edge]float64{}
	m.OnDown = func(a, b string) { downs[edge{a, b}] = n.Sim.Now() }
	m.OnUp = func(a, b string) { ups[edge{a, b}] = n.Sim.Now() }
	if err := m.WatchBoth("a", "b"); err != nil {
		t.Fatal(err)
	}

	n.Sim.Schedule(0.20, func() { n.SetLinkDown("a", "b", true) })
	n.Sim.Schedule(0.60, func() { n.SetLinkDown("a", "b", false) })
	n.Sim.Run()

	for _, e := range []edge{{"a", "b"}, {"b", "a"}} {
		at, ok := downs[e]
		if !ok {
			t.Fatalf("%s->%s never declared down", e.a, e.b)
		}
		// Detection needs MissThreshold misses after the failure: within
		// (threshold+1) intervals plus one interval of probe slack.
		if at < 0.20 || at > 0.20+5*0.01 {
			t.Errorf("%s->%s down at %.3f, want within (0.20, 0.25]", e.a, e.b, at)
		}
		up, ok := ups[e]
		if !ok {
			t.Fatalf("%s->%s never recovered", e.a, e.b)
		}
		if up < 0.60 || up > 0.60+2*0.01 {
			t.Errorf("%s->%s up at %.3f, want within (0.60, 0.62]", e.a, e.b, up)
		}
		if m.Down(e.a, e.b) {
			t.Errorf("%s->%s still down at end", e.a, e.b)
		}
	}
	if got := ev.Get(telemetry.EventLinkFlap); got != 2 {
		t.Errorf("link_flap = %d, want 2 (one per direction)", got)
	}
	if got := ev.Get(telemetry.EventKeepaliveMiss); got < 6 {
		t.Errorf("keepalive_miss = %d, want >= 6", got)
	}
	if tl.Len() != 4 {
		t.Errorf("timeline has %d entries, want 4 (2 down + 2 up):\n%s", tl.Len(), tl)
	}
}

func TestMonitorWatchValidation(t *testing.T) {
	n := diamondNet(t)
	m := NewMonitor(n, n.Sim, MonitorConfig{})
	if err := m.Watch("a", "ghost"); err == nil {
		t.Error("unknown peer accepted")
	}
	if err := m.Watch("ghost", "a"); err == nil {
		t.Error("unknown node accepted")
	}
	if err := m.Watch("a", "d"); err == nil {
		t.Error("non-adjacent pair accepted")
	}
	if err := m.Watch("a", "b"); err != nil {
		t.Errorf("valid watch rejected: %v", err)
	}
	if err := m.Watch("a", "b"); err != nil {
		t.Errorf("duplicate watch should be a no-op, got: %v", err)
	}
}

func TestMonitorProbesInvisibleToDeliveryStats(t *testing.T) {
	n := diamondNet(t)
	m := NewMonitor(n, n.Sim, MonitorConfig{Interval: 0.01, Until: 0.2})
	if err := m.WatchBoth("a", "b"); err != nil {
		t.Fatal(err)
	}
	seen := 0
	n.Router("a").OnDeliver = func(*packet.Packet) { seen++ }
	n.Router("b").OnDeliver = func(*packet.Packet) { seen++ }
	n.Sim.Run()
	if seen != 0 {
		t.Errorf("control sink leaked %d probes into delivery stats", seen)
	}
}
