package router

import (
	"fmt"

	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/stats"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// enginePump binds a router's concurrent dataplane engine to its wires
// as a batch egress sink: the engine's shard workers stage processed
// packets into per-next-hop rings and flush them here, whole batches at
// a time, so router egress rides each wire's SendBatch path — one
// interface crossing and (on UDP links) one coalesced syscall burst per
// batch instead of one per packet.
//
// All three methods run on engine worker goroutines and take the
// network lock, which serialises them against the simulator, the serial
// Receive path and stats readers. Engine.Close drains the rings through
// Flush, so Network.Close must never be called with the lock held.
type enginePump struct {
	n *Network
	r *Router
}

// Flush implements dataplane.Egress: one batch of forwarded packets,
// all bound for nextHop. The router's Forwarded counter is merged once
// per batch, not once per packet — the accounting mirrors the egress
// granularity the wire sees.
func (ep *enginePump) Flush(nextHop string, ps []*packet.Packet) {
	ep.n.mu.Lock()
	defer ep.n.mu.Unlock()
	l, ok := ep.r.links[nextHop]
	if !ok {
		for _, p := range ps {
			ep.r.dropNoTrace(p, swmpls.DropNoRoute)
		}
		return
	}
	var batch stats.Counter
	for _, p := range ps {
		batch.Add(p.Size())
	}
	ep.r.Stats.Forwarded.Merge(batch)
	l.SendBatch(ps)
}

// Deliver implements dataplane.Egress: packets whose stack emptied here
// go through the router's ordinary delivery path (control sinks first,
// then stats and OnDeliver).
func (ep *enginePump) Deliver(ps []*packet.Packet) {
	ep.n.mu.Lock()
	defer ep.n.mu.Unlock()
	for _, p := range ps {
		ep.r.deliver(p)
	}
}

// Discard implements dataplane.Egress. The engine already traced the
// discards (its trace ring is attached in pump mode) and counted them
// in its own snapshot; here they land in the router-level counters so
// node accounting stays consistent with the serial path.
func (ep *enginePump) Discard(ps []*packet.Packet, reasons []swmpls.DropReason) {
	ep.n.mu.Lock()
	defer ep.n.mu.Unlock()
	for i, p := range ps {
		ep.r.dropNoTrace(p, reasons[i])
	}
}

// AttachEgressPump switches the named router's engine-backed data plane
// to batch egress: the engine's shard workers flush their staging rings
// straight onto the router's wires instead of the router driving the
// plane packet-at-a-time through Receive. Pair it with FeedTo so
// arrivals enter the engine's shard queues directly — then the whole
// datapath is batched end to end: recvmmsg → pinned shard queue →
// worker batch → staging ring → SendBatch → sendmmsg.
//
// It errors when the node's plane is not engine-backed. Attach before
// opening listeners so the first arrival already finds the pump.
func (n *Network) AttachEgressPump(name string) error {
	r := n.Router(name)
	ep, ok := r.plane.(*EnginePlane)
	if !ok {
		return fmt.Errorf("router: node %q has no engine data plane to pump (plane %T)", name, r.plane)
	}
	r.pumped = true
	// In pump mode the engine is the one applying label operations on its
	// workers, so it owns the per-operation trace; drop counters stay at
	// the router level (the pump's Discard), exactly one increment per
	// packet either way.
	if r.trace != nil {
		ep.Engine.SetTelemetry(telemetry.Sink{Trace: r.trace, Node: r.name})
	}
	ep.Engine.SetEgress(&enginePump{n: n, r: r})
	return nil
}

// FeedTo returns a transport receive sink feeding one engine shard of a
// pumped router: labelled packets are admission-checked and submitted
// straight to shard `shard` — pinned, without the network lock, with
// backpressure on the socket goroutine when the queue fills — while
// unlabelled and control traffic takes the serial Receive path under
// the lock. Pair it with transport.ListenSharded so the kernel's
// SO_REUSEPORT hash is the only demultiplexer:
//
//	net.AttachEgressPump("b")
//	transport.ListenSharded(addr, eng.Workers(), func(i int) func([]transport.Inbound) {
//		return net.FeedTo("b", i)
//	}, opts...)
//
// It panics when the node's plane is not engine-backed, matching
// Router's unknown-name behaviour: feeding a serial plane by shard is a
// programming error, not a runtime condition.
func (n *Network) FeedTo(name string, shard int) func(batch []transport.Inbound) {
	r := n.Router(name)
	ep, ok := r.plane.(*EnginePlane)
	if !ok {
		panic(fmt.Sprintf("router: FeedTo(%q): plane %T is not engine-backed", name, r.plane))
	}
	eng := ep.Engine
	// The fast-path slice is owned by this sink's socket goroutine and
	// reused across batches; the engine keeps only the clones.
	fast := make([]*packet.Packet, 0, 64)
	return func(batch []transport.Inbound) {
		fast = fast[:0]
		slow := false
		for _, in := range batch {
			if !in.P.Labelled() {
				slow = true
				continue
			}
			// The ingress guard is internally locked and resolved through
			// the same atomic indirection the pre-decode hooks use, so it
			// is safe here on the socket goroutine without the network lock.
			if g := n.guard.Load(); g != nil && !(*g).Admit(in.P, in.From) {
				continue
			}
			fast = append(fast, in.P.Clone())
		}
		if len(fast) > 0 {
			eng.Submit(fast, dataplane.SubmitOpts{Wait: true, Pin: true, Shard: shard})
		}
		if slow {
			n.mu.Lock()
			for _, in := range batch {
				if !in.P.Labelled() {
					r.Receive(in.P.Clone(), in.From)
				}
			}
			n.mu.Unlock()
		}
	}
}
