package integration

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// freeTCPAddrs reserves n distinct loopback TCP ports the same way
// freeUDPAddrs does for the data plane: bind, record, release.
func freeTCPAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// mgmtScenario renders the three-node line with a management address
// per node. extraFlow is a JSON fragment appended to the flows array
// ("" for none).
func mgmtScenario(udp, tcp []string, extraFlow string) string {
	if extraFlow != "" {
		extraFlow = ", " + extraFlow
	}
	return fmt.Sprintf(`{
  "name": "mgmt-acceptance",
  "duration_s": 20,
  "nodes": [{"name": "ingress"}, {"name": "core"}, {"name": "egress"}],
  "links": [
    {"a": "ingress", "b": "core", "rate_mbps": 10, "delay_ms": 0.1},
    {"a": "core", "b": "egress", "rate_mbps": 10, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "prefix_len": 32,
     "path": ["ingress", "core", "egress"]}
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "ingress", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 5}%s
  ],
  "transport": {
    "kind": "udp",
    "nodes": {"ingress": %q, "core": %q, "egress": %q},
    "mgmt": {"ingress": %q, "core": %q, "egress": %q}
  }
}`, extraFlow, udp[0], udp[1], udp[2], tcp[0], tcp[1], tcp[2])
}

// TestManagementPlaneProcesses is the ISSUE's acceptance run: three
// mplsnode OS processes serving their management plane, driven entirely
// by the mplsctl binary. It proves, over real sockets:
//
//   - a runtime-provisioned LSP (mplsctl lsp provision) establishes and
//     carries traffic end to end,
//   - the ingress infobase dump shows the new FEC,
//   - every node answers a Prometheus scrape with mpls_* series,
//   - config.reload adds a flow to the running fleet without a restart
//     (the flow rides the runtime-provisioned LSP, so both proofs
//     compound), and
//   - SIGINT takes the graceful path: management drains before the
//     network tears down.
func TestManagementPlaneProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	dir := t.TempDir()
	nodeBin := filepath.Join(dir, "mplsnode")
	ctlBin := filepath.Join(dir, "mplsctl")
	for pkg, bin := range map[string]string{
		"embeddedmpls/cmd/mplsnode": nodeBin,
		"embeddedmpls/cmd/mplsctl":  ctlBin,
	} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Dir = moduleRoot(t)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	udp, tcp := freeUDPAddrs(t, 3), freeTCPAddrs(t, 3)
	cfg := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(cfg, []byte(mgmtScenario(udp, tcp, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	// The reload target adds flow 2 toward the address the test will
	// provision an LSP for at runtime — the scenario file itself never
	// declares an LSP covering it.
	next := filepath.Join(dir, "next.json")
	if err := os.WriteFile(next, []byte(mgmtScenario(udp, tcp,
		`{"id": 2, "kind": "cbr", "from": "ingress", "dst": "10.7.0.50",
		  "size_bytes": 256, "interval_ms": 5}`)), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(node string) (*exec.Cmd, *strings.Builder) {
		var out strings.Builder
		cmd := exec.Command(nodeBin, "-config", cfg, "-node", node, "-duration", "30")
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", node, err)
		}
		return cmd, &out
	}
	egress, egressOut := run("egress")
	core, coreOut := run("core")
	time.Sleep(200 * time.Millisecond)
	ingress, ingressOut := run("ingress")
	procs := []struct {
		name string
		cmd  *exec.Cmd
		out  *strings.Builder
	}{{"ingress", ingress, ingressOut}, {"core", core, coreOut}, {"egress", egress, egressOut}}

	// ctl runs one mplsctl command; ok=false tolerates failure (used
	// while polling for convergence).
	ctl := func(ok bool, args ...string) string {
		out, err := exec.Command(ctlBin, append([]string{"-cluster", cfg}, args...)...).CombinedOutput()
		if ok && err != nil {
			t.Fatalf("mplsctl %s: %v\n%s", strings.Join(args, " "), err, out)
		}
		return string(out)
	}
	poll := func(want string, args ...string) string {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		var last string
		for time.Now().Before(deadline) {
			last = ctl(false, args...)
			if strings.Contains(last, want) {
				return last
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("mplsctl %s never showed %q; last output:\n%s", strings.Join(args, " "), want, last)
		return ""
	}

	// Fleet converges: the scenario LSP establishes at the ingress.
	poll("1 established)", "-node", "ingress", "status")

	// Provision a new LSP at runtime and wait for it to establish.
	out := ctl(true, "-node", "ingress", "lsp", "provision",
		"-id", "rt", "-dst", "10.7.0.50", "-to", "egress")
	if !strings.Contains(out, "1/1 LSPs signalled") {
		t.Fatalf("provision output: %s", out)
	}
	poll("rt gen 1 ingress established", "-node", "ingress", "lsp", "list")

	// Ingress infobase dump shows both the file-declared and the
	// runtime-provisioned FEC.
	out = ctl(true, "-node", "ingress", "infobase", "-level", "1")
	for _, fec := range []string{"10.0.0.9/32", "10.7.0.50/32"} {
		if !strings.Contains(out, fec) {
			t.Errorf("infobase dump is missing %s:\n%s", fec, out)
		}
	}

	// Every node answers a scrape with its own mpls_* series.
	out = ctl(true, "scrape")
	for _, want := range []string{"mpls_node_drops_total", `node="ingress"`, `node="core"`, `node="egress"`} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape is missing %s", want)
		}
	}

	// Reload the ingress with a scenario that adds flow 2 toward the
	// runtime LSP's FEC — applied live, no restart.
	out = ctl(true, "-node", "ingress", "reload", "-path", next)
	if !strings.Contains(out, "+1 flows [2]") {
		t.Fatalf("reload output: %s", out)
	}

	// One fleet drop sweep for good measure, then let flow 2 run.
	ctl(true, "watch", "drops", "-n", "2", "-interval", "100ms")
	time.Sleep(1500 * time.Millisecond)

	// Graceful end: SIGINT every process; each drains its management
	// plane and prints final per-flow stats.
	for _, p := range procs {
		if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signalling %s: %v", p.name, err)
		}
	}
	for _, p := range procs {
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("%s exited: %v\n%s", p.name, err, p.out)
		}
		if !strings.Contains(p.out.String(), "shutting down") {
			t.Errorf("%s did not narrate the graceful path:\n%s", p.name, p.out)
		}
	}

	// The reload-added flow delivered end to end through the LSP that
	// only ever existed via mplsctl.
	m := regexp.MustCompile(`flow 2: sent=\d+ delivered=(\d+)`).FindStringSubmatch(egressOut.String())
	if m == nil {
		t.Fatalf("egress printed no flow 2 stats:\n%s", egressOut)
	}
	delivered, _ := strconv.Atoi(m[1])
	if delivered == 0 {
		t.Fatalf("flow 2 delivered nothing:\negress: %s\ningress: %s\ncore: %s",
			egressOut, ingressOut, coreOut)
	}
	t.Logf("reload-added flow delivered %d packets over the runtime-provisioned LSP", delivered)
}
