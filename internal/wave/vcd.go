package wave

import (
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteVCD writes the trace as a Value Change Dump file viewable in any
// waveform viewer (GTKWave etc.). One VCD time unit equals one clock
// cycle; ts stamps the header (pass the zero time for reproducible
// output).
func (t *Tracer) WriteVCD(w io.Writer, module string, ts time.Time) error {
	if module == "" {
		module = "trace"
	}
	date := "(reproducible run)"
	if !ts.IsZero() {
		date = ts.Format(time.RFC1123)
	}
	if _, err := fmt.Fprintf(w, "$date %s $end\n$version embeddedmpls wave $end\n$timescale 1 ns $end\n$scope module %s $end\n", date, module); err != nil {
		return err
	}
	ids := make([]string, len(t.signals))
	for i, s := range t.signals {
		ids[i] = vcdID(i)
		if _, err := fmt.Fprintf(w, "$var wire %d %s %s $end\n", s.Width(), ids[i], s.Name()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}
	last := make([]uint64, len(t.signals))
	seen := false
	for r, row := range t.rows {
		wroteTime := false
		for i, v := range row {
			if seen && v == last[i] {
				continue
			}
			if !wroteTime {
				if _, err := fmt.Fprintf(w, "#%d\n", t.cycles[r]); err != nil {
					return err
				}
				wroteTime = true
			}
			if err := writeVCDValue(w, t.signals[i].Width(), v, ids[i]); err != nil {
				return err
			}
			last[i] = v
		}
		seen = true
	}
	return nil
}

// vcdID assigns each signal a short printable identifier code.
func vcdID(i int) string {
	const first, count = 33, 94 // printable ASCII '!'..'~'
	if i < count {
		return string(rune(first + i))
	}
	return string(rune(first+i%count)) + strconv.Itoa(i/count)
}

func writeVCDValue(w io.Writer, width uint, v uint64, id string) error {
	if width == 1 {
		_, err := fmt.Fprintf(w, "%d%s\n", v&1, id)
		return err
	}
	_, err := fmt.Fprintf(w, "b%b %s\n", v, id)
	return err
}
