// Package plane defines the unified forwarding-plane contract. The
// repository grew three engines — the RFC 3031 software forwarder
// (swmpls), the paper's embedded device built around the label stack
// modifier (device, lsm), and the concurrent sharded engine
// (dataplane) — each with its own processing entry point and its own
// pair of telemetry setters. Plane is the seam they all share, so the
// router, the simulator and the benchmarks can hold any engine through
// one interface instead of switching on concrete types.
package plane

import (
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// Plane is one forwarding engine: a per-packet processing step plus
// the unified observability attachment.
type Plane interface {
	// ProcessPacket applies one forwarding step to p in place on the
	// caller's goroutine and reports the decision. One step means one
	// table pass: a tunnel tail that pops and must re-examine the
	// inner label returns Forward with an empty NextHop, and the
	// caller loops (bounded by label.MaxDepth+1 passes).
	ProcessPacket(p *packet.Packet) swmpls.Result
	// SetTelemetry attaches the unified observability sink: drop
	// counters, label-op/discard trace, and the node name events are
	// attributed to. Zero-value fields detach the corresponding hook.
	SetTelemetry(s telemetry.Sink)
}
