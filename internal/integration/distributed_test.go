package integration

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/telemetry"
)

// freeUDPAddrs reserves n distinct loopback UDP ports by binding and
// releasing ephemeral sockets. The usual small race (another process
// grabbing a port between release and reuse) is acceptable in tests.
func freeUDPAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = c.LocalAddr().String()
		c.Close()
	}
	return addrs
}

// distributedScenario renders a three-node line scenario (the
// examples/distributed topology) onto the given transport addresses.
func distributedScenario(addrs []string, durationS float64) string {
	return fmt.Sprintf(`{
  "name": "distributed-line-test",
  "duration_s": %g,
  "nodes": [
    {"name": "ingress", "plane": "software"},
    {"name": "core", "plane": "software"},
    {"name": "egress", "plane": "software"}
  ],
  "links": [
    {"a": "ingress", "b": "core", "rate_mbps": 10, "delay_ms": 0.1},
    {"a": "core", "b": "egress", "rate_mbps": 10, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "prefix_len": 32,
     "path": ["ingress", "core", "egress"]}
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "ingress", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 5}
  ],
  "transport": {
    "kind": "udp",
    "nodes": {"ingress": %q, "core": %q, "egress": %q}
  }
}`, durationS, addrs[0], addrs[1], addrs[2])
}

// TestDistributedLSPInProcess builds each node of the scenario as its
// own network — separate simulators, real loopback sockets between them,
// exactly what three mplsnode processes would hold — and checks the LSP
// forwards end to end. Runs under -race in CI.
func TestDistributedLSPInProcess(t *testing.T) {
	s, err := config.Load(strings.NewReader(distributedScenario(freeUDPAddrs(t, 3), 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ingress", "core", "egress"}
	built := make([]*config.Built, len(names))
	for i, name := range names {
		b, err := s.BuildNode(name)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Net.Close()
		built[i] = b
	}

	var wg sync.WaitGroup
	for _, b := range built {
		wg.Add(1)
		go func(b *config.Built) {
			defer wg.Done()
			b.Net.RunReal(s.DurationS + 0.3)
		}(b)
	}
	wg.Wait()

	ingress, egress := built[0], built[2]
	ingress.Net.Lock()
	sent := ingress.Collector.Flow(1).Sent.Events
	ingress.Net.Unlock()
	egress.Net.Lock()
	delivered := egress.Collector.Flow(1).Delivered.Events
	egress.Net.Unlock()
	if sent == 0 {
		t.Fatal("ingress sent nothing")
	}
	if delivered == 0 {
		t.Fatalf("egress delivered nothing of %d sent", sent)
	}
	// Loopback UDP may drop under load, but an end-to-end LSP should
	// carry the bulk of a gentle CBR flow.
	if delivered < sent/2 {
		t.Errorf("delivered %d of %d sent", delivered, sent)
	}
}

// TestDistributedLSPProcesses is the real thing: it builds cmd/mplsnode
// and runs one OS process per router, asserting the egress process
// reports end-to-end deliveries on its stdout.
func TestDistributedLSPProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "mplsnode")
	build := exec.Command("go", "build", "-o", bin, "embeddedmpls/cmd/mplsnode")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building mplsnode: %v\n%s", err, out)
	}

	cfg := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(cfg, []byte(distributedScenario(freeUDPAddrs(t, 3), 1)), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(node string) (*exec.Cmd, *strings.Builder) {
		var out strings.Builder
		cmd := exec.Command(bin, "-config", cfg, "-node", node, "-duration", "2")
		cmd.Stdout = &out
		cmd.Stderr = &out
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting %s: %v", node, err)
		}
		return cmd, &out
	}

	// Downstream nodes first so their sockets exist before traffic flows.
	egress, egressOut := run("egress")
	core, coreOut := run("core")
	time.Sleep(200 * time.Millisecond)
	ingress, ingressOut := run("ingress")

	for _, p := range []struct {
		name string
		cmd  *exec.Cmd
		out  *strings.Builder
	}{{"ingress", ingress, ingressOut}, {"core", core, coreOut}, {"egress", egress, egressOut}} {
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("%s exited: %v\n%s", p.name, err, p.out)
		}
	}

	m := regexp.MustCompile(`delivered=(\d+)`).FindStringSubmatch(egressOut.String())
	if m == nil {
		t.Fatalf("egress printed no delivery stats:\n%s", egressOut)
	}
	delivered, _ := strconv.Atoi(m[1])
	if delivered == 0 {
		t.Fatalf("egress delivered nothing:\negress: %s\ningress: %s\ncore: %s",
			egressOut, ingressOut, coreOut)
	}
	t.Logf("egress delivered %d packets across three processes", delivered)
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above working directory")
		}
		dir = parent
	}
}

// diamondScenario renders the examples/distributed diamond onto the
// given transport addresses: primary path through core, backup path
// through backup, one CBR flow.
func diamondScenario(addrs []string, durationS float64) string {
	return fmt.Sprintf(`{
  "name": "distributed-diamond-test",
  "duration_s": %g,
  "nodes": [
    {"name": "ingress"}, {"name": "core"}, {"name": "backup"}, {"name": "egress"}
  ],
  "links": [
    {"a": "ingress", "b": "core", "rate_mbps": 10, "delay_ms": 0.1, "metric": 1},
    {"a": "core", "b": "egress", "rate_mbps": 10, "delay_ms": 0.1, "metric": 1},
    {"a": "ingress", "b": "backup", "rate_mbps": 10, "delay_ms": 0.1, "metric": 5},
    {"a": "backup", "b": "egress", "rate_mbps": 10, "delay_ms": 0.1, "metric": 5}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "prefix_len": 32,
     "path": ["ingress", "core", "egress"]}
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "ingress", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 5}
  ],
  "transport": {
    "kind": "udp",
    "nodes": {"ingress": %q, "core": %q, "backup": %q, "egress": %q}
  }
}`, durationS, addrs[0], addrs[1], addrs[2], addrs[3])
}

// TestDistributedRerouteInProcess kills the core node of the diamond
// mid-run — its sockets close, its process state is gone — and checks
// the surviving processes heal over the wire: dead timers fire, the
// ingress performs a protection switch onto the backup path, and the
// egress keeps delivering. Runs under -race in CI.
func TestDistributedRerouteInProcess(t *testing.T) {
	s, err := config.Load(strings.NewReader(diamondScenario(freeUDPAddrs(t, 4), 2)))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ingress", "core", "backup", "egress"}
	built := make(map[string]*config.Built, len(names))
	for _, name := range names {
		b, err := s.BuildNode(name)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Net.Close()
		built[name] = b
	}
	ingress, egress := built["ingress"], built["egress"]

	var lastPath []string
	ingress.Net.Lock()
	ingress.Speaker.OnEstablished = func(id string, path []string) {
		lastPath = append(lastPath[:0], path...)
	}
	ingress.Net.Unlock()

	const killAt = 0.7
	var atKill uint64
	var wg sync.WaitGroup
	for _, name := range names {
		b, d := built[name], s.DurationS+0.3
		if name == "core" {
			d = killAt
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			b.Net.RunReal(d)
			if name == "core" {
				b.Net.Close()
				egress.Net.Lock()
				atKill = egress.Collector.Flow(1).Delivered.Events
				egress.Net.Unlock()
			}
		}(name)
	}
	wg.Wait()

	ingress.Net.Lock()
	switches := ingress.Events.Get(telemetry.EventProtectionSwitch)
	path := strings.Join(lastPath, ",")
	ingress.Net.Unlock()
	if switches < 1 {
		t.Errorf("ingress protection_switch = %d, want >= 1", switches)
	}
	if path != "ingress,backup,egress" {
		t.Errorf("final path = %s, want ingress,backup,egress", path)
	}
	egress.Net.Lock()
	final := egress.Collector.Flow(1).Delivered.Events
	egress.Net.Unlock()
	if final <= atKill {
		t.Errorf("no deliveries after the kill: %d at kill, %d final", atKill, final)
	}
	t.Logf("delivered %d before the kill, %d after, path %s", atKill, final-atKill, path)
}
