package packet

import (
	"bytes"
	"math/rand"
	"testing"

	"embeddedmpls/internal/label"
)

func TestAddrString(t *testing.T) {
	a := AddrFrom(192, 168, 1, 1)
	if a != 0xc0a80101 {
		t.Errorf("AddrFrom = %#x", uint32(a))
	}
	if a.String() != "192.168.1.1" {
		t.Errorf("String = %q", a.String())
	}
}

func TestNewPacketBasics(t *testing.T) {
	p := New(AddrFrom(10, 0, 0, 1), AddrFrom(10, 0, 0, 2), 64, []byte("hello"))
	if p.Labelled() {
		t.Error("fresh packet should be unlabelled")
	}
	if p.Identifier() != uint32(AddrFrom(10, 0, 0, 2)) {
		t.Error("identifier must be the destination address")
	}
	if p.Size() != 14+5 {
		t.Errorf("size = %d, want 19", p.Size())
	}
	if err := p.Stack.Push(label.Entry{Label: 100, TTL: 63}); err != nil {
		t.Fatal(err)
	}
	if !p.Labelled() || p.Size() != 14+5+4 {
		t.Errorf("after label: labelled=%v size=%d", p.Labelled(), p.Size())
	}
}

func TestMarshalUnmarshalUnlabelled(t *testing.T) {
	p := New(AddrFrom(10, 0, 0, 1), AddrFrom(10, 9, 8, 7), 64, []byte("payload"))
	p.Header.Proto = 17
	p.Header.FlowID = 4242
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header != p.Header || !bytes.Equal(q.Payload, p.Payload) || q.Labelled() {
		t.Errorf("round trip: %v -> %v", p, q)
	}
}

func TestMarshalUnmarshalLabelled(t *testing.T) {
	p := New(AddrFrom(1, 2, 3, 4), AddrFrom(5, 6, 7, 8), 200, []byte{1, 2, 3})
	_ = p.Stack.Push(label.Entry{Label: 100, CoS: 1, TTL: 63})
	_ = p.Stack.Push(label.Entry{Label: 200, CoS: 2, TTL: 63})
	buf, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Stack.Equal(p.Stack) {
		t.Errorf("stack mismatch: %v vs %v", q.Stack, p.Stack)
	}
	if q.Header != p.Header {
		t.Errorf("header mismatch: %+v vs %+v", q.Header, p.Header)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrTruncated {
		t.Errorf("empty buffer: %v", err)
	}
	if _, err := Unmarshal([]byte{0x99, 0, 0}); err == nil {
		t.Error("bad magic accepted")
	}
	p := New(1, 2, 3, nil)
	buf, _ := p.Marshal()
	if _, err := Unmarshal(buf[:len(buf)-1]); err != ErrTruncated {
		t.Errorf("truncated header: %v", err)
	}
	// Labelled packet whose stack never ends.
	bad := []byte{0x88, 0x00, 0x01, 0x00, 0x3f} // S bit clear, then EOF
	if _, err := Unmarshal(bad); err == nil {
		t.Error("unterminated label stack accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := New(1, 2, 64, []byte{9})
	_ = p.Stack.Push(label.Entry{Label: 7, TTL: 1})
	q := p.Clone()
	if _, err := q.Stack.Pop(); err != nil {
		t.Fatal(err)
	}
	q.Payload[0] = 42
	if p.Stack.Empty() || p.Payload[0] != 9 {
		t.Error("clone shares state with the original")
	}
}

// TestMarshalRoundTripProperty fuzzes the wire format.
func TestMarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		p := New(Addr(rng.Uint32()), Addr(rng.Uint32()), uint8(rng.Intn(256)), make([]byte, rng.Intn(64)))
		rng.Read(p.Payload)
		p.Header.Proto = uint8(rng.Intn(256))
		p.Header.FlowID = uint16(rng.Intn(1 << 16))
		for d := rng.Intn(label.MaxDepth + 1); d > 0; d-- {
			_ = p.Stack.Push(label.Entry{
				Label: label.Label(rng.Intn(1 << 20)),
				CoS:   label.CoS(rng.Intn(8)),
				TTL:   uint8(rng.Intn(256)),
			})
		}
		buf, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		q, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
		if q.Header != p.Header || !bytes.Equal(q.Payload, p.Payload) || !q.Stack.Equal(p.Stack) {
			t.Fatalf("trial %d: round trip mismatch\n%v\n%v", i, p, q)
		}
	}
}

func TestStringForms(t *testing.T) {
	p := New(AddrFrom(1, 0, 0, 1), AddrFrom(1, 0, 0, 2), 9, nil)
	if s := p.String(); s == "" || !bytes.Contains([]byte(s), []byte("unlabelled")) {
		t.Errorf("String = %q", s)
	}
	_ = p.Stack.Push(label.Entry{Label: 4, TTL: 2})
	if s := p.String(); bytes.Contains([]byte(s), []byte("unlabelled")) {
		t.Errorf("labelled String = %q", s)
	}
}
