// Signaling: constraint-based LSP setup with real protocol messages —
// the CR-LDP machinery the paper names as MPLS's label distribution
// protocol. A LabelRequest travels downstream over the simulated links,
// LabelMappings come back upstream, every hop reserving bandwidth and
// installing its forwarding entry, and the ingress learns of success one
// control round-trip later. A second request that exceeds the remaining
// bandwidth is refused mid-path and unwinds cleanly.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signal"
)

func main() {
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LSR},
		{Name: "d", Hardware: true, RouterType: lsm.LER},
	}
	var links []router.LinkSpec
	for _, pair := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		links = append(links, router.LinkSpec{A: pair[0], B: pair[1], RateBPS: 10e6, Delay: 0.003})
	}
	net, err := router.Build(nodes, links)
	check(err)

	fab := signal.NewFabric(net.Sim, net.Topo)
	for name, r := range net.Routers {
		fab.AddNode(name, r)
	}
	ingress, _ := fab.Node("a")

	dst := packet.AddrFrom(10, 0, 0, 9)
	fmt.Println("setting up an 8 Mbps LSP a->b->c->d ...")
	err = ingress.Setup("gold", ldp.FEC{Dst: dst, PrefixLen: 32},
		[]string{"a", "b", "c", "d"}, 8e6, 5, func(e error) {
			if e != nil {
				log.Fatalf("setup failed: %v", e)
			}
			fmt.Printf("t=%.1fms: ingress got its label mapping — LSP up\n", net.Sim.Now()*1e3)
		})
	check(err)
	net.Sim.Run()

	fmt.Println("\nmessage exchange (3 ms per hop):")
	for _, e := range fab.Log {
		extra := ""
		if e.Msg.Type == signal.LabelMapping {
			extra = fmt.Sprintf(" label=%d", e.Msg.Label)
		}
		fmt.Printf("  t=%4.1fms  %s -> %s  %v%s\n", e.At*1e3, e.From, e.To, e.Msg.Type, extra)
	}

	// Prove the LSP forwards.
	delivered := false
	net.Router("d").OnDeliver = func(*packet.Packet) { delivered = true }
	net.Router("a").Inject(packet.New(1, dst, 64, []byte("payload")))
	net.Sim.Run()
	fmt.Printf("\ndata packet delivered over the signalled LSP: %v\n", delivered)

	// A second LSP that does not fit: only 2 Mbps left on every link.
	// The ingress's own link check refuses it before any message is
	// sent — constraint-based setup failing fast.
	fmt.Println("\nrequesting a second 5 Mbps LSP on the same path ...")
	start := len(fab.Log)
	err = ingress.Setup("silver", ldp.FEC{Dst: dst + 1, PrefixLen: 32},
		[]string{"a", "b", "c", "d"}, 5e6, 0, func(e error) {
			fmt.Printf("t=%.1fms: ingress notified: %v\n", net.Sim.Now()*1e3, e)
		})
	if err != nil {
		fmt.Printf("refused at the ingress: %v\n", err)
	}
	net.Sim.Run()
	for _, e := range fab.Log[start:] {
		fmt.Printf("  t=%4.1fms  %s -> %s  %v  %s\n", e.At*1e3, e.From, e.To, e.Msg.Type, e.Msg.Reason)
	}
	ab, _ := net.Topo.Link("a", "b")
	fmt.Printf("\nreservations after the failed setup: a->b %.0f Mbps of %.0f (rolled back cleanly)\n",
		ab.ReservedBPS/1e6, ab.CapacityBPS/1e6)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
