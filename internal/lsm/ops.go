// Package lsm implements the label stack modifier — the core contribution
// of Peterkin & Ionescu, "Embedded MPLS Architecture" (2005): the hardware
// block that performs push/pop/swap on an MPLS label stack under the
// control of an information base.
//
// The package provides two implementations with identical semantics:
//
//   - Behavioral: a plain-Go functional reference model, used by the
//     network simulator's data plane and as the oracle in property tests.
//   - HW: a cycle-accurate register-transfer-level model built on the rtl
//     kernel, with the four control state machines (main, label stack
//     interface, information base interface, search) and the data path of
//     the paper's Figures 7-13. Its measured latencies reproduce Table 6
//     exactly, and its signal traces reproduce Figures 14-16.
package lsm

import (
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/telemetry"
)

// Command is the external operation requested of the label stack
// modifier (the paper's "extoperation" input).
type Command uint8

// The command encoding. UserPush/UserPop manipulate the stack directly
// ("push/pop from external user"); Update runs the full consult-the-
// information-base sequence on the current packet; WritePair and Lookup
// access the information base (the figures' "save" and "lookup" signals).
const (
	CmdNone Command = iota
	CmdUserPush
	CmdUserPop
	CmdUpdate
	CmdWritePair
	CmdLookup
	// CmdReadPair reads the information base entry at a given address
	// directly — the paper's data path accepts "a search index when the
	// user wants to read the contents of the information base directly".
	// The address arrives on data_in; the entry appears on label_out,
	// operation_out and index_out.
	CmdReadPair
)

// String names the command.
func (c Command) String() string {
	switch c {
	case CmdNone:
		return "none"
	case CmdUserPush:
		return "user-push"
	case CmdUserPop:
		return "user-pop"
	case CmdUpdate:
		return "update"
	case CmdWritePair:
		return "write-pair"
	case CmdLookup:
		return "lookup"
	case CmdReadPair:
		return "read-pair"
	default:
		return fmt.Sprintf("cmd(%d)", uint8(c))
	}
}

// RouterType is the paper's "rtrtype" input: logic low selects label edge
// router behaviour, logic high label switch router behaviour. It selects
// where the TTL and CoS of a pushed entry come from when the stack is
// empty (the LER ingress case).
type RouterType uint8

// Router types.
const (
	LER RouterType = 0 // label edge router
	LSR RouterType = 1 // label switch router
)

// String names the router type.
func (r RouterType) String() string {
	if r == LER {
		return "LER"
	}
	return "LSR"
}

// DiscardReason explains why an update discarded the packet.
type DiscardReason uint8

// Discard reasons, in the order the hardware can detect them.
const (
	DiscardNone         DiscardReason = iota // packet not discarded
	DiscardNotFound                          // no matching information base entry
	DiscardTTLExpired                        // TTL reached zero after decrement
	DiscardInconsistent                      // stored operation impossible in this state
)

// Telemetry maps a discard reason onto the unified telemetry taxonomy.
// The three discard transitions of the paper's update sequence map
// one-to-one: an information base search with no match is a lookup
// miss, a TTL that reached zero is a TTL expiry, and a stored
// operation that is impossible in the current stack state is an
// inconsistent operation. ok is false for DiscardNone and unknown
// values.
func (d DiscardReason) Telemetry() (r telemetry.Reason, ok bool) {
	switch d {
	case DiscardNotFound:
		return telemetry.ReasonLookupMiss, true
	case DiscardTTLExpired:
		return telemetry.ReasonTTLExpired, true
	case DiscardInconsistent:
		return telemetry.ReasonInconsistentOp, true
	default:
		return 0, false
	}
}

// String names the discard reason.
func (d DiscardReason) String() string {
	switch d {
	case DiscardNone:
		return "none"
	case DiscardNotFound:
		return "not-found"
	case DiscardTTLExpired:
		return "ttl-expired"
	case DiscardInconsistent:
		return "inconsistent"
	default:
		return fmt.Sprintf("discard(%d)", uint8(d))
	}
}

// UpdateRequest carries the per-packet inputs of an update operation.
type UpdateRequest struct {
	// PacketID is the 32-bit packet identifier used to search level 1
	// when the label stack is empty (for IP packets, typically the
	// destination address).
	PacketID uint32
	// TTLIn is the control-path TTL source: the TTL a label pushed onto
	// an empty stack starts from (e.g. the packet's IP TTL). The uniform
	// decrement still applies, so the entry carries TTLIn-1.
	TTLIn uint8
	// CoSIn is the control-path CoS source for an entry pushed onto an
	// empty stack. For non-empty stacks the CoS is copied from the old
	// top entry and never modified, as the paper specifies.
	CoSIn label.CoS
}

// UpdateResult reports what an update did.
type UpdateResult struct {
	// Discard is DiscardNone on success; otherwise the packet was
	// discarded (its label stack reset).
	Discard DiscardReason
	// Op is the information base operation that was applied (or would
	// have been, when Discard is DiscardTTLExpired/DiscardInconsistent).
	Op label.Op
	// NewLabel is the label read from the information base.
	NewLabel label.Label
	// SearchPos is the 1-based position at which the search matched, or
	// the number of entries scanned on a miss. It feeds the cycle cost
	// model (the search cost is 3*SearchPos+5).
	SearchPos int
}

// Discarded reports whether the update dropped the packet.
func (r UpdateResult) Discarded() bool { return r.Discard != DiscardNone }
