package resilience

import (
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/telemetry"
)

func signalingDiamond(t *testing.T, events *telemetry.EventCounters) (*router.Network, map[string]*signaling.Speaker) {
	t.Helper()
	net, err := router.Build(
		[]router.NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		[]router.LinkSpec{
			{A: "a", B: "b", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "b", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 1},
			{A: "a", B: "c", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
			{A: "c", B: "d", RateBPS: 1e9, Delay: 0.0005, Metric: 5},
		})
	if err != nil {
		t.Fatal(err)
	}
	speakers, err := signaling.Deploy(net, signaling.WithEvents(events), signaling.WithUntil(3))
	if err != nil {
		t.Fatal(err)
	}
	return net, speakers
}

// TestSessionHealerProtectionSwitch runs the full distributed loop: the
// monitor detects the dead link at the *egress* side, the session
// healer there sends a Reroute request upstream over the wire, and the
// ingress switches the LSP onto the backup path.
func TestSessionHealerProtectionSwitch(t *testing.T) {
	var events telemetry.EventCounters
	var tl Timeline
	net, speakers := signalingDiamond(t, &events)

	// Monitor probes the b-d link from d's side; its healer runs at d,
	// far from the ingress a.
	mon := NewMonitor(net, net.Sim, MonitorConfig{
		Interval: 0.005, MissThreshold: 3, Until: 2, Events: &events, Timeline: &tl,
	})
	sh := BindSessions(speakers["d"], net.Sim, &tl)
	mon.OnDown = sh.LinkDown
	mon.OnUp = sh.LinkUp
	if err := mon.Watch("d", "b"); err != nil {
		t.Fatal(err)
	}

	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)
	sh.Protect("l", []string{"a", "b", "d"})

	// Cut b-d for data AND signaling: probes die, the monitor fires,
	// and the healer's reroute request must travel d -> b -> a... but
	// d-b is dead. The d->a escalation can't cross the dead link, so
	// the withdraw cascade (b's session to d dying) is what actually
	// reaches the ingress. Both mechanisms are in play; either way the
	// LSP must end up on a-c-d.
	net.SetLinkDown("b", "d", true)
	net.Sim.RunUntil(2.0)

	if got := events.Get(telemetry.EventProtectionSwitch); got < 1 {
		t.Fatalf("protection_switch = %d, want >= 1\n%s", got, tl.String())
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("path after heal = %v, want a,c,d\n%s", lastPath, tl.String())
	}
	if tl.Len() == 0 {
		t.Error("timeline recorded nothing")
	}
}

// TestSessionHealerRemoteRequest exercises the wire escalation in
// isolation: no link actually fails, the healer at the egress is just
// told one did (degraded-style), and the reroute request must cross
// two live sessions to reach the ingress.
func TestSessionHealerRemoteRequest(t *testing.T) {
	var events telemetry.EventCounters
	var tl Timeline
	net, speakers := signalingDiamond(t, &events)

	sh := BindSessions(speakers["d"], net.Sim, &tl)
	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Setup(ldp.SetupRequest{
		ID:   "l",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	var lastPath []string
	speakers["a"].OnEstablished = func(id string, path []string) { lastPath = path }
	net.Sim.RunUntil(0.6)
	sh.Protect("l", []string{"a", "b", "d"})

	sh.LinkDown("a", "b") // reported failure, sessions all still up
	net.Sim.RunUntil(1.2)

	if got := events.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Fatalf("protection_switch = %d, want 1\n%s", got, tl.String())
	}
	if strings.Join(lastPath, ",") != "a,c,d" {
		t.Fatalf("path after request = %v, want a,c,d", lastPath)
	}

	// A second report for a link the path no longer uses is a no-op.
	sh.LinkDown("a", "b")
	net.Sim.RunUntil(1.8)
	if got := events.Get(telemetry.EventProtectionSwitch); got != 1 {
		t.Errorf("duplicate report caused another switch: %d", got)
	}
}
