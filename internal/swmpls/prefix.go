package swmpls

import (
	"fmt"

	"embeddedmpls/internal/packet"
)

// prefixTable is a binary trie keyed on address bits, giving
// longest-prefix-match FEC classification at the ingress LER.
type prefixTable struct {
	root *trieNode
}

type trieNode struct {
	child [2]*trieNode
	entry *NHLFE
}

func newPrefixTable() *prefixTable { return &prefixTable{root: &trieNode{}} }

// insert binds addr/prefixLen to n, replacing any existing binding for
// exactly that prefix.
func (t *prefixTable) insert(addr packet.Addr, prefixLen int, n NHLFE) error {
	if prefixLen < 0 || prefixLen > 32 {
		return fmt.Errorf("swmpls: prefix length %d out of range", prefixLen)
	}
	node := t.root
	for i := 0; i < prefixLen; i++ {
		bit := addr >> (31 - i) & 1
		if node.child[bit] == nil {
			node.child[bit] = &trieNode{}
		}
		node = node.child[bit]
	}
	e := n
	node.entry = &e
	return nil
}

// lookup returns the NHLFE of the longest prefix covering addr.
func (t *prefixTable) lookup(addr packet.Addr) (NHLFE, bool) {
	var best *NHLFE
	node := t.root
	for i := 0; node != nil; i++ {
		if node.entry != nil {
			best = node.entry
		}
		if i == 32 {
			break
		}
		node = node.child[addr>>(31-i)&1]
	}
	if best == nil {
		return NHLFE{}, false
	}
	return *best, true
}

// clone deep-copies the trie structure. Entry pointers are shared: insert
// never mutates an installed NHLFE in place (it always allocates a fresh
// one), so shared entries are safe under concurrent readers.
func (t *prefixTable) clone() *prefixTable {
	return &prefixTable{root: t.root.clone()}
}

func (n *trieNode) clone() *trieNode {
	if n == nil {
		return nil
	}
	return &trieNode{
		child: [2]*trieNode{n.child[0].clone(), n.child[1].clone()},
		entry: n.entry,
	}
}

// remove deletes the binding for exactly addr/prefixLen and reports
// whether one existed. Interior nodes are left in place; the trie is
// small enough that pruning is not worth the complexity.
func (t *prefixTable) remove(addr packet.Addr, prefixLen int) bool {
	if prefixLen < 0 || prefixLen > 32 {
		return false
	}
	node := t.root
	for i := 0; i < prefixLen; i++ {
		node = node.child[addr>>(31-i)&1]
		if node == nil {
			return false
		}
	}
	had := node.entry != nil
	node.entry = nil
	return had
}
