package config

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// reloadScenario renders the reload-test line topology. extraLSPs,
// extraFlows and guard are JSON fragments spliced into the respective
// arrays/sections ("" for none).
func reloadScenario(addrs []string, extraLSP, extraFlow, guard string) string {
	if extraLSP != "" {
		extraLSP = ", " + extraLSP
	}
	if extraFlow != "" {
		extraFlow = ", " + extraFlow
	}
	if guard != "" {
		guard = `, "guard": ` + guard
	}
	return fmt.Sprintf(`{
  "name": "reload-test",
  "duration_s": 2,
  "nodes": [{"name": "in"}, {"name": "core"}, {"name": "out"}],
  "links": [
    {"a": "in", "b": "core", "rate_mbps": 10, "delay_ms": 0.1},
    {"a": "core", "b": "out", "rate_mbps": 10, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "path": ["in", "core", "out"]}%s
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "in", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 5}%s
  ],
  "transport": {"kind": "udp", "nodes": {"in": %q, "core": %q, "out": %q}}%s
}`, extraLSP, extraFlow, addrs[0], addrs[1], addrs[2], guard)
}

// TestApplyDeltaLive runs the three-node line over real loopback
// sockets and reloads the ingress mid-run with a scenario that adds an
// LSP, a flow riding it, and a guard section. The added flow must
// deliver end to end — through the runtime-signalled LSP — without any
// restart.
func TestApplyDeltaLive(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs, "", "", ""))
	next := loadScenario(t, reloadScenario(addrs,
		`{"id": "l2", "dst": "10.0.0.8", "path": ["in", "core", "out"]}`,
		`{"id": 2, "kind": "cbr", "from": "in", "dst": "10.0.0.8", "size_bytes": 256, "interval_ms": 5}`,
		`{"rate_pps": 50000}`))

	names := []string{"in", "core", "out"}
	built := map[string]*Built{}
	for _, name := range names {
		b, err := s.BuildNode(name)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Net.Close()
		built[name] = b
	}
	in, out := built["in"], built["out"]

	var wg sync.WaitGroup
	var rep *ReloadReport
	var repErr error
	for _, name := range names {
		wg.Add(1)
		go func(b *Built) {
			defer wg.Done()
			b.Net.RunReal(2.3)
		}(built[name])
	}
	// Let sessions converge and l1 establish, then reload the ingress
	// while every node keeps forwarding.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(800 * time.Millisecond)
		in.Net.Lock()
		rep, repErr = in.ApplyDelta(next)
		in.Net.Unlock()
	}()
	wg.Wait()

	if repErr != nil {
		t.Fatalf("ApplyDelta: %v", repErr)
	}
	if strings.Join(rep.AddedLSPs, ",") != "l2" {
		t.Errorf("AddedLSPs = %v, want [l2]", rep.AddedLSPs)
	}
	if len(rep.AddedFlows) != 1 || rep.AddedFlows[0] != 2 {
		t.Errorf("AddedFlows = %v, want [2]", rep.AddedFlows)
	}
	if !rep.GuardUpdated {
		t.Error("GuardUpdated = false, want the section to arm a guard")
	}
	if len(rep.Skipped) != 0 {
		t.Errorf("Skipped = %v, want none", rep.Skipped)
	}
	in.Net.Lock()
	if in.Guard == nil {
		t.Error("reload did not arm the guard")
	}
	if in.Scenario != next {
		t.Error("reload did not adopt the new scenario")
	}
	lsps := in.Speaker.List()
	in.Net.Unlock()
	found := false
	for _, l := range lsps {
		if l.ID == "l2" && l.Established {
			found = true
		}
	}
	if !found {
		t.Errorf("l2 never established: %+v", lsps)
	}

	in.Net.Lock()
	sent := in.Collector.Flow(2).Sent.Events
	in.Net.Unlock()
	out.Net.Lock()
	delivered := out.Collector.Flow(2).Delivered.Events
	out.Net.Unlock()
	if sent == 0 {
		t.Fatal("added flow generated nothing")
	}
	if delivered == 0 {
		t.Fatalf("added flow delivered nothing of %d sent", sent)
	}
	t.Logf("added flow: %d sent, %d delivered through the runtime LSP", sent, delivered)
}

// TestApplyDeltaStructuralSkips changes topology, transport and running
// flows; every one must be reported, none applied.
func TestApplyDeltaStructuralSkips(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs, "", "", ""))
	b, err := s.BuildNode("in")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()

	next := loadScenario(t, reloadScenario(addrs, "", "", ""))
	next.Links[0].RateMbps = 99   // topology change
	next.Transport.Coalesce = 7   // wiring change
	next.Flows[0].IntervalMs = 50 // running generator change
	b.Net.Lock()
	rep, err := b.ApplyDelta(next)
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Skipped) != 3 {
		t.Fatalf("Skipped = %v, want 3 entries", rep.Skipped)
	}
	for _, want := range []string{"links", "transport", "flow 1"} {
		ok := false
		for _, got := range rep.Skipped {
			if strings.Contains(got, want) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("Skipped %v does not mention %s", rep.Skipped, want)
		}
	}
	if len(rep.AddedLSPs)+len(rep.ChangedLSPs)+len(rep.RemovedLSPs) != 0 {
		t.Errorf("structural reload touched LSPs: %+v", rep)
	}
	// Idempotence: reloading what is now current is a no-op... except
	// the flow-change skip persists, because the running generator still
	// differs from the file.
	b.Net.Lock()
	rep2, err := b.ApplyDelta(next)
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.AddedLSPs) != 0 || len(rep2.AddedFlows) != 0 || rep2.GuardUpdated {
		t.Errorf("second reload applied changes: %+v", rep2)
	}
}

// TestApplyDeltaRemovesLSP drops an LSP from the file and expects the
// ingress to tear it down.
func TestApplyDeltaRemovesLSP(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs,
		`{"id": "l2", "dst": "10.0.0.8", "path": ["in", "core", "out"]}`, "", ""))
	b, err := s.BuildNode("in")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	next := loadScenario(t, reloadScenario(addrs, "", "", ""))
	b.Net.Lock()
	rep, err := b.ApplyDelta(next)
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rep.RemovedLSPs, ",") != "l2" {
		t.Errorf("RemovedLSPs = %v, want [l2]", rep.RemovedLSPs)
	}
	b.Net.Lock()
	lsps := b.Speaker.List()
	b.Net.Unlock()
	for _, l := range lsps {
		if l.ID == "l2" {
			t.Errorf("l2 still present after removal reload: %+v", l)
		}
	}
}

// TestApplyDeltaChangesLSP edits an LSP's declaration and expects a
// make-before-break re-signal.
func TestApplyDeltaChangesLSP(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs, "", "", ""))
	b, err := s.BuildNode("in")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	next := loadScenario(t, reloadScenario(addrs, "", "", ""))
	next.LSPs[0].CoS = 5
	b.Net.Lock()
	rep, err := b.ApplyDelta(next)
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rep.ChangedLSPs, ",") != "l1" {
		t.Errorf("ChangedLSPs = %v, want [l1]", rep.ChangedLSPs)
	}
}

// TestSetGuardSpecArmsAndMerges checks the guard.set path: arming a
// guard on a node that booted open, then merging a second spec over the
// stored section.
func TestSetGuardSpecArmsAndMerges(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs, "", "", ""))
	b, err := s.BuildNode("in")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	if b.Guard != nil {
		t.Fatal("node booted with a guard despite no section")
	}
	b.Net.Lock()
	g, err := b.SetGuardSpec("rate_pps=100")
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if g.RatePPS != 100 {
		t.Errorf("returned section = %+v", g)
	}
	if b.Guard == nil {
		t.Fatal("guard.set did not arm a guard")
	}
	if got := b.Guard.DefaultPolicy().RatePPS; got != 100 {
		t.Errorf("armed RatePPS = %v, want 100", got)
	}
	// Second spec merges over the stored section: rate survives.
	b.Net.Lock()
	g, err = b.SetGuardSpec("ttl_min=3")
	b.Net.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if g.RatePPS != 100 || g.TTLMin != 3 {
		t.Errorf("merged section = %+v, want rate_pps 100 ttl_min 3", g)
	}
	pol := b.Guard.DefaultPolicy()
	if pol.RatePPS != 100 || pol.MinTTL != 3 {
		t.Errorf("retuned policy = %+v", pol)
	}
	// A bad spec leaves the stored section untouched.
	b.Net.Lock()
	_, err = b.SetGuardSpec("bogus=1")
	b.Net.Unlock()
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if b.Scenario.Guard.TTLMin != 3 {
		t.Errorf("bad spec corrupted the stored section: %+v", b.Scenario.Guard)
	}
}

// TestProvisionLSPValidation checks the RPC-path provisioner rejects
// what it must.
func TestProvisionLSPValidation(t *testing.T) {
	addrs := loopbackAddrs(t, 3)
	s := loadScenario(t, reloadScenario(addrs, "", "", ""))
	b, err := s.BuildNode("in")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	b.Net.Lock()
	defer b.Net.Unlock()
	if err := b.ProvisionLSP(LSP{ID: "x", Dst: "10.0.0.7", Path: []string{"core", "out"}}); err == nil {
		t.Error("provision of a foreign-ingress LSP accepted")
	}
	if err := b.ProvisionLSP(LSP{ID: "x", Dst: "not-an-addr", To: "out"}); err == nil {
		t.Error("provision with junk dst accepted")
	}
	// CSPF-routed with From defaulted to the local node.
	if err := b.ProvisionLSP(LSP{ID: "x", Dst: "10.0.0.7", To: "out"}); err != nil {
		t.Errorf("CSPF provision: %v", err)
	}
}
