package transport

import (
	"encoding/binary"
	"errors"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// frameOf encodes ps into one coalesced frame.
func frameOf(t testing.TB, src NodeID, ps ...*packet.Packet) []byte {
	t.Helper()
	fr := BeginFrame(nil)
	for _, p := range ps {
		if err := fr.Append(p, src); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := fr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestFrameRoundTrip(t *testing.T) {
	want := []*packet.Packet{
		samplePacket(t),
		packet.New(1, 2, 8, []byte{0xde, 0xad}),
		packet.New(3, 4, 16, nil),
	}
	buf := frameOf(t, 7, want...)
	if !IsFrame(buf) {
		t.Fatal("IsFrame = false on an encoded frame")
	}
	// The single-packet decoder must refuse frames — they share the
	// magic, so only the flag separates the two formats.
	if _, err := DecodePacket(new(packet.Packet), buf); !errors.Is(err, ErrFrame) {
		t.Fatalf("DecodePacket(frame) = %v, want ErrFrame", err)
	}
	var got []*packet.Packet
	err := ForEachFrameSegment(buf, func(seg []byte) error {
		var p packet.Packet
		src, err := DecodePacket(&p, seg)
		if err != nil {
			return err
		}
		if src != 7 {
			t.Errorf("segment src = %d, want 7", src)
		}
		got = append(got, &p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		checkEqual(t, want[i], got[i])
	}
}

func TestFrameEncoderAppends(t *testing.T) {
	// BeginFrame appends: leading bytes already in dst must survive and
	// Size must count only the frame.
	prefix := []byte{1, 2, 3}
	fr := BeginFrame(append([]byte(nil), prefix...))
	if err := fr.Append(packet.New(1, 2, 8, []byte("x")), 0); err != nil {
		t.Fatal(err)
	}
	buf, err := fr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(buf) - len(prefix); got != fr.Size() {
		t.Errorf("Size = %d, frame occupies %d bytes", fr.Size(), got)
	}
	if buf[0] != 1 || buf[1] != 2 || buf[2] != 3 {
		t.Errorf("prefix clobbered: % x", buf[:3])
	}
	if err := ForEachFrameSegment(buf[len(prefix):], func([]byte) error { return nil }); err != nil {
		t.Errorf("frame after prefix: %v", err)
	}
}

func TestFrameFinishEmpty(t *testing.T) {
	fr := BeginFrame(nil)
	if _, err := fr.Finish(); !errors.Is(err, ErrFrame) {
		t.Fatalf("Finish with no segments = %v, want ErrFrame", err)
	}
}

// TestFrameErrors drives every structural violation through the walker:
// each must return the right error class without panicking.
func TestFrameErrors(t *testing.T) {
	good := frameOf(t, 1, samplePacket(t), packet.New(1, 2, 8, []byte("x")))

	mutate := func(fn func(b []byte) []byte) []byte {
		return fn(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:4], ErrTruncated},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xff; return b }), ErrMagic},
		{"bad version", mutate(func(b []byte) []byte { b[2]++; return b }), ErrVersion},
		{"flag clear", mutate(func(b []byte) []byte { b[3] &^= flagFrame; return b }), ErrFrame},
		{"zero count", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:], 0)
			return b
		}), ErrFrame},
		{"count over segments", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:], 3)
			return b
		}), ErrTruncated},
		{"truncated tail", good[:len(good)-5], ErrTruncated},
		{"cut inside length prefix", good[:frameHeaderSize+1], ErrTruncated},
		{"segment length overruns", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[frameHeaderSize:], 0xffff)
			return b
		}), ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), good...), 0xaa), ErrFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ForEachFrameSegment(tc.buf, func([]byte) error { return nil })
			if !errors.Is(err, tc.want) {
				t.Errorf("ForEachFrameSegment = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestFrameSegmentLimit(t *testing.T) {
	fr := BeginFrame(nil)
	p := packet.New(1, 2, 8, nil)
	for i := 0; i < MaxFramePackets; i++ {
		if err := fr.Append(p, 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := fr.Append(p, 0); err == nil {
		t.Fatalf("append %d accepted past MaxFramePackets", MaxFramePackets+1)
	}
	if fr.Count() != MaxFramePackets {
		t.Fatalf("Count = %d after rejected append, want %d", fr.Count(), MaxFramePackets)
	}
	if _, err := fr.Finish(); err != nil {
		t.Fatal(err)
	}
}

// FuzzFrameDecode feeds arbitrary bytes to the frame walker: it must
// reject or accept without panicking or over-reading, and every segment
// it accepts must itself decode-or-reject cleanly; accepted packets must
// re-encode.
func FuzzFrameDecode(f *testing.F) {
	f.Add(frameOf(f, 3, samplePacket(f)))
	f.Add(frameOf(f, 0, packet.New(1, 2, 8, []byte("x")), packet.New(2, 1, 8, nil)))
	f.Add([]byte{magic0, magic1, Version, flagFrame, 0, 0})       // zero count
	f.Add([]byte{magic0, magic1, Version, flagFrame, 0, 2, 0, 9}) // overrun
	f.Fuzz(func(t *testing.T, data []byte) {
		err := ForEachFrameSegment(data, func(seg []byte) error {
			if len(seg) > len(data) {
				t.Fatalf("segment of %d bytes from a %d-byte datagram", len(seg), len(data))
			}
			var p packet.Packet
			src, err := DecodePacket(&p, seg)
			if err != nil {
				return nil // malformed segment: the receiver drops, fine
			}
			if _, err := AppendPacket(nil, &p, src); err != nil {
				t.Fatalf("accepted segment failed to re-encode: %v", err)
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFrame) &&
			!errors.Is(err, ErrMagic) && !errors.Is(err, ErrVersion) {
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}

// FuzzFrameRoundTrip coalesces a fuzz-shaped batch of packets into one
// frame and checks the walk returns them intact and in order.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte("hi"), uint32(100<<12|5<<9|64), uint16(40))
	f.Add(uint8(1), []byte{}, uint32(0), uint16(0))
	f.Fuzz(func(t *testing.T, n uint8, payload []byte, entryBits uint32, seed uint16) {
		k := int(n)%MaxFramePackets + 1
		if len(payload) > 512 {
			payload = payload[:512]
		}
		want := make([]*packet.Packet, k)
		fr := BeginFrame(nil)
		for i := range want {
			p := packet.New(packet.Addr(seed)+packet.Addr(i), 2, 8, payload)
			p.SeqNo = uint64(seed) + uint64(i)
			if entryBits != 0 {
				e := label.Entry{
					Label: label.Label(entryBits>>12) & 0xfffff,
					CoS:   label.CoS(entryBits>>9) & 7,
					TTL:   uint8(entryBits),
				}
				if err := p.Stack.Push(e); err != nil {
					t.Skip("unencodable label entry")
				}
			}
			want[i] = p
			if err := fr.Append(p, NodeID(seed)); err != nil {
				t.Fatal(err)
			}
		}
		buf, err := fr.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !IsFrame(buf) {
			t.Fatal("IsFrame = false on an encoded frame")
		}
		i := 0
		err = ForEachFrameSegment(buf, func(seg []byte) error {
			var p packet.Packet
			src, err := DecodePacket(&p, seg)
			if err != nil {
				return err
			}
			if src != NodeID(seed) {
				t.Errorf("segment %d src = %d, want %d", i, src, seed)
			}
			if i >= k {
				t.Fatalf("walker produced more than %d segments", k)
			}
			checkEqual(t, want[i], &p)
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != k {
			t.Fatalf("decoded %d packets, want %d", i, k)
		}
	})
}
