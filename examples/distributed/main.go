// Distributed operation with a live protection switch: the diamond in
// scenario.json split across router processes that exchange labeled
// packets AND label signaling over loopback UDP, with the core router
// killed mid-run.
//
// The real walkthrough runs one mplsnode per terminal (see README.md);
// this example compresses it into a single binary by building each
// node exactly as its own process would — config.BuildNode gives every
// node its own network, simulator, signaling speaker and sockets, and
// nothing but UDP datagrams connects them. No node knows the others'
// label tables: LDP-style sessions form over the wire, the ingress
// signals the LSP hop by hop, and when the core dies its neighbours'
// dead timers fire, the ingress tears the broken path and resignals
// through the backup — a cross-process protection switch.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"embeddedmpls/internal/config"
)

func main() {
	log.SetFlags(0)
	f, err := os.Open("scenario.json")
	if err != nil {
		// Also runnable from the repo root (make examples).
		f, err = os.Open("examples/distributed/scenario.json")
	}
	if err != nil {
		log.Fatal("run from examples/distributed or the repo root: ", err)
	}
	scenario, err := config.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"ingress", "core", "backup", "egress"}
	built := make(map[string]*config.Built, len(names))
	for _, name := range names {
		b, err := scenario.BuildNode(name)
		if err != nil {
			log.Fatal(err)
		}
		defer b.Net.Close()
		built[name] = b
		fmt.Printf("node %s up at %s (%d routers in-process, speakers to %v)\n",
			name, scenario.Transport.Nodes[name], len(b.Net.Routers), b.Speaker.Peers())
	}

	// Narrate the control plane from the ingress: these hooks run under
	// the node's network lock, in its delivery path.
	in := built["ingress"]
	in.Speaker.OnSessionUp = func(peer string) {
		fmt.Printf("t=%.3fs ingress: session to %s up\n", in.Net.Sim.Now(), peer)
	}
	in.Speaker.OnSessionDown = func(peer string) {
		fmt.Printf("t=%.3fs ingress: session to %s DOWN\n", in.Net.Sim.Now(), peer)
	}
	in.Speaker.OnEstablished = func(id string, path []string) {
		fmt.Printf("t=%.3fs ingress: LSP %q established via %v\n", in.Net.Sim.Now(), id, path)
	}

	// Each node pumps its own clock, exactly as separate processes
	// would — except the core, which dies a third of the way in.
	const killAt = 1.0
	d := scenario.DurationS + 0.5
	var wg sync.WaitGroup
	for _, name := range names {
		b, dur := built[name], d
		if name == "core" {
			dur = killAt
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			b.Net.RunReal(dur)
			if name == "core" {
				fmt.Printf("t=%.3fs core: KILLED (sockets closed, process gone)\n", killAt)
				b.Net.Close()
			}
		}(name)
	}
	wg.Wait()

	fmt.Printf("\nafter %.1fs of wall-clock traffic:\n", d)
	for _, name := range names {
		b := built[name]
		b.Net.Lock()
		fmt.Printf("  %v\n    %v\n    %v\n", b.Net.Router(name), b.Net.Wire, b.Events)
		b.Net.Unlock()
	}
	eg := built["egress"]
	eg.Net.Lock()
	defer eg.Net.Unlock()
	for _, id := range eg.Collector.FlowIDs() {
		fs := eg.Collector.Flow(id)
		fmt.Printf("flow %d at egress: delivered=%d latency %s\n",
			id, fs.Delivered.Events, fs.Latency.Summary("ms", 1e3))
	}
	fmt.Println("the gap in deliveries around the kill is the dead-timer window;")
	fmt.Println("everything after it travelled ingress -> backup -> egress.")
}
