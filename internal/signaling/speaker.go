package signaling

import (
	"errors"
	"fmt"
	"sort"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// FlowID marks signaling packets; the speaker's control sink claims
// them before delivery statistics, like the resilience probes.
const FlowID uint16 = 0xfdb5

// ControlAddr is the well-known control-plane address of a node. The
// 241.0/16 prefix keeps it clear of traffic addresses and of the
// resilience monitor's 240.0/16 probe addresses.
func ControlAddr(id transport.NodeID) packet.Addr {
	return packet.AddrFrom(241, 0, byte(id>>8), byte(id))
}

// Clock is the time source the speaker schedules against; the network
// simulator satisfies it directly.
type Clock interface {
	Now() float64
	Schedule(delay float64, f func())
}

// Counters aggregates a speaker's message accounting.
type Counters struct {
	Tx         uint64 // signaling messages sent
	Rx         uint64 // signaling messages received and decoded
	MapRx      uint64 // label mappings received
	WithdrawRx uint64 // label withdraws received
}

// Speaker is one node's signaling instance: a session per directly
// linked neighbour, plus the downstream-on-demand label distribution
// state machine. It is not internally locked — in simulation every
// entry point runs on the simulator's event loop, and in distributed
// mode the network's deliver path and the caller's setup path
// serialise on the network lock.
type Speaker struct {
	name  string
	self  transport.NodeID
	names []string
	ids   map[string]transport.NodeID
	r     *router.Router
	topo  *te.Topology
	clock Clock
	cfg   config

	sessions  map[string]*Session
	lsps      map[string]*lsp // by generation-qualified id
	byBase    map[string]*lsp // ingress LSPs by base id, current generation
	next      label.Label
	addr      packet.Addr
	pending   map[string][]*Message // messages queued for a not-yet-up session
	rx        Message               // reusable decode target
	stopped   bool
	redialing map[string]bool                   // peers with a restart-policy redial in flight
	avoids    map[string]map[te.LinkKey]float64 // per-base avoid memory: link -> expiry
	excluder  func() map[te.LinkKey]bool        // external CSPF exclusions (flap damping)
	lastRx    uint64                            // Stats.Rx at last maintenance sweep

	// Stats counts signaling traffic through this speaker.
	Stats Counters

	// OnSessionUp and OnSessionDown observe session transitions;
	// OnEstablished fires each time a path generation of an ingress LSP
	// completes mapping (including after a protection switch). All are
	// optional.
	OnSessionUp   func(peer string)
	OnSessionDown func(peer string)
	OnEstablished func(id string, path []string)
}

// lsp is the per-node state of one LSP generation crossing this node.
type lsp struct {
	id           string // generation-qualified: "base#gen"
	base         string
	gen          int
	fec          ldp.FEC
	cos          label.CoS
	php          bool
	bandwidth    float64
	route        []string // full path, ingress first
	upstream     string   // "" at the ingress
	downstream   string   // "" at the egress
	inLabel      label.Label
	outLabel     label.Label
	ftnInstalled bool
	ilmInstalled bool
	reserved     bool // local outgoing segment reserved
	mapped       bool
	attempts     int
	done         func(error)
	prev         *lsp // ingress make-before-break: generation awaiting release
}

func (l *lsp) ingress() bool { return l.upstream == "" }
func (l *lsp) egress() bool  { return l.downstream == "" }

// New builds a speaker for router r. names is the cluster's full node
// name table in NodeID order (the same table the transport layer uses);
// self must appear in it. A session is created toward every attached
// link whose far end is a known node; call Start to begin signaling.
func New(r *router.Router, topo *te.Topology, clock Clock, names []string, self string, opts ...Option) (*Speaker, error) {
	cfg := defaults()
	for _, o := range opts {
		o(&cfg)
	}
	s := &Speaker{
		name:      self,
		names:     append([]string(nil), names...),
		ids:       make(map[string]transport.NodeID, len(names)),
		r:         r,
		topo:      topo,
		clock:     clock,
		cfg:       cfg,
		sessions:  make(map[string]*Session),
		lsps:      make(map[string]*lsp),
		byBase:    make(map[string]*lsp),
		next:      label.FirstUnreserved,
		pending:   make(map[string][]*Message),
		redialing: make(map[string]bool),
		avoids:    make(map[string]map[te.LinkKey]float64),
	}
	for i, n := range names {
		if _, dup := s.ids[n]; dup {
			return nil, fmt.Errorf("signaling: duplicate node name %q", n)
		}
		s.ids[n] = transport.NodeID(i)
	}
	id, ok := s.ids[self]
	if !ok {
		return nil, fmt.Errorf("signaling: node %q not in name table", self)
	}
	s.self = id
	s.addr = ControlAddr(id)
	r.AddLocal(s.addr)
	r.AddControlSink(s.sink)
	for _, l := range r.Links() {
		peer := l.To()
		if _, known := s.ids[peer]; !known {
			continue
		}
		s.sessions[peer] = NewSession(peer, cfg.timers,
			func(t MsgType) { s.sendSession(peer, t) },
			func() { s.sessionUp(peer) },
			func() { s.sessionDown(peer) })
	}
	return s, nil
}

// Name returns the speaker's node name.
func (s *Speaker) Name() string { return s.name }

// Peers returns the session peers in sorted order.
func (s *Speaker) Peers() []string {
	out := make([]string, 0, len(s.sessions))
	for p := range s.sessions {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Session returns the session toward peer, if one exists.
func (s *Speaker) Session(peer string) (*Session, bool) {
	sess, ok := s.sessions[peer]
	return sess, ok
}

// Start begins session ticking on the clock. Sessions discover their
// peers with hellos and converge to operational on their own.
func (s *Speaker) Start() {
	for _, peer := range s.Peers() {
		sess := s.sessions[peer]
		s.clock.Schedule(0, func() { s.tick(sess) })
	}
	if s.cfg.maintIvl > 0 {
		s.clock.Schedule(s.cfg.maintIvl, func() { s.maintain() })
	}
}

// SetPathExcluder installs a CSPF exclusion source consulted on every
// reroute — the seam flap damping uses to keep suppressed links out of
// protection paths. fn runs in the speaker's serialisation context.
func (s *Speaker) SetPathExcluder(fn func() map[te.LinkKey]bool) { s.excluder = fn }

// Stop halts all ticking after the current round.
func (s *Speaker) Stop() { s.stopped = true }

func (s *Speaker) tick(sess *Session) {
	if s.stopped || (s.cfg.until > 0 && s.clock.Now() >= s.cfg.until) {
		return
	}
	sess.Tick(s.clock.Now())
	s.clock.Schedule(sess.Timers().Hello, func() { s.tick(sess) })
}

// Sever administratively cuts the session toward peer for d seconds —
// the fault-injection hook. The peer side must be severed separately
// (its speaker is possibly another process).
func (s *Speaker) Sever(peer string, d float64) error {
	sess, ok := s.sessions[peer]
	if !ok {
		return fmt.Errorf("signaling: no session %s->%s", s.name, peer)
	}
	sess.Sever(s.clock.Now(), d)
	return nil
}

// ---- transmit path ----

// sendSession emits a bare session message toward peer. Session
// messages bypass the pending queue: they are what brings a session up.
func (s *Speaker) sendSession(peer string, t MsgType) {
	m := Message{Type: t, Src: s.self, Hold: s.cfg.timers.withDefaults().Hold}
	s.transmit(peer, &m)
}

// sendWhenUp delivers a label message to peer now if its session is
// operational, otherwise queues it for the next session-up. The message
// is copied, so callers may reuse theirs.
func (s *Speaker) sendWhenUp(peer string, m *Message) {
	sess, ok := s.sessions[peer]
	if !ok {
		return
	}
	if sess.Up() {
		s.transmit(peer, m)
		return
	}
	cp := *m
	cp.Route = append([]transport.NodeID(nil), m.Route...)
	q := append(s.pending[peer], &cp)
	if len(q) > maxPending {
		// Bound the queue toward a peer that never comes back: keep the
		// newest messages (they supersede the old state anyway) and let
		// the ingress retry machinery regenerate anything shed.
		q = append([]*Message(nil), q[len(q)-maxPending:]...)
	}
	s.pending[peer] = q
}

// maxPending bounds the per-peer queue of label messages waiting for a
// session: a neighbour that never returns must not grow memory without
// bound.
const maxPending = 256

// transmit encodes m and sends it on the direct link toward peer. The
// payload buffer is allocated fresh per message: packets do not copy
// their payloads, and a control message may sit queued on a simulated
// link long after this call returns.
func (s *Speaker) transmit(peer string, m *Message) {
	link, ok := s.r.Link(peer)
	if !ok {
		return
	}
	buf := make([]byte, 0, headerSize+int(m.IDLen)+2*len(m.Route))
	buf, err := AppendMessage(buf, m)
	if err != nil {
		return
	}
	p := packet.New(s.addr, ControlAddr(s.ids[peer]), 8, buf)
	p.Header.FlowID = FlowID
	p.SentAt = s.clock.Now()
	s.Stats.Tx++
	link.Send(p)
}

// ---- receive path ----

// sink is the router control sink: it claims and dispatches signaling
// packets.
func (s *Speaker) sink(p *packet.Packet) bool {
	if p.Header.FlowID != FlowID {
		return false
	}
	if err := DecodeMessage(&s.rx, p.Payload); err != nil {
		return true // malformed signaling packet: claimed and dropped
	}
	m := &s.rx
	if int(m.Src) >= len(s.names) {
		return true
	}
	peer := s.names[m.Src]
	s.Stats.Rx++
	now := s.clock.Now()
	switch m.Type {
	case MsgHello, MsgInit, MsgKeepalive:
		if sess, ok := s.sessions[peer]; ok {
			sess.Handle(m.Type, now)
		}
	default:
		// Any label message proves the peer alive.
		if sess, ok := s.sessions[peer]; ok {
			sess.Touch(now)
		}
		s.handleLabelMsg(peer, m)
	}
	return true
}

func (s *Speaker) handleLabelMsg(peer string, m *Message) {
	switch m.Type {
	case MsgLabelRequest:
		s.handleRequest(m)
	case MsgLabelMapping:
		s.handleMapping(peer, m)
	case MsgLabelWithdraw:
		s.handleWithdraw(peer, m)
	case MsgLabelRelease:
		s.handleRelease(peer, m)
	case MsgReroute:
		s.handleReroute(m)
	case MsgError:
		s.handleError(m)
	}
}

// ---- session transitions ----

func (s *Speaker) sessionUp(peer string) {
	s.event(telemetry.EventSessionUp)
	if s.OnSessionUp != nil {
		s.OnSessionUp(peer)
	}
	// Flush messages that waited for the session.
	queued := s.pending[peer]
	delete(s.pending, peer)
	for _, m := range queued {
		s.transmit(peer, m)
	}
	// Re-signal ingress LSPs that lost their path while the cluster was
	// partitioned and could not be rerouted.
	for _, base := range s.sortedBases() {
		l := s.byBase[base]
		if !l.mapped && !s.inFlight(l) {
			s.resignal(l, te.LinkKey{})
		}
	}
}

func (s *Speaker) sessionDown(peer string) {
	s.event(telemetry.EventSessionDown)
	if s.OnSessionDown != nil {
		s.OnSessionDown(peer)
	}
	// Tear every LSP crossing the dead session, deterministically.
	ids := make([]string, 0, len(s.lsps))
	for id := range s.lsps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		l, ok := s.lsps[id]
		if !ok {
			continue // removed by an earlier teardown in this loop
		}
		switch peer {
		case l.downstream:
			s.lostDownstream(l, te.LinkKey{From: s.name, To: peer})
		case l.upstream:
			s.lostUpstream(l)
		}
	}
	s.kickRestart(peer)
}

// errRedialPending is the sentinel a redial probe returns while the
// session is still down, telling the restart policy to back off and
// try again.
var errRedialPending = errors.New("signaling: session not re-established")

// kickRestart hands re-establishment of the session toward peer to the
// restart policy: the periodic hello is muted and the policy paces
// single discovery pokes with backoff instead. The session stays fully
// responsive to the peer throughout, so it can also come up passively;
// if the policy exhausts its budget the legacy hello cadence resumes.
func (s *Speaker) kickRestart(peer string) {
	if s.cfg.restart == nil || s.redialing[peer] {
		return
	}
	sess, ok := s.sessions[peer]
	if !ok {
		return
	}
	s.redialing[peer] = true
	sess.SuppressHellos(true)
	s.cfg.restart.Do("redial:"+s.name+"->"+peer, func() error {
		if s.stopped || sess.Up() {
			return nil
		}
		sess.Poke(s.clock.Now())
		return errRedialPending
	}, func(error) {
		delete(s.redialing, peer)
		sess.SuppressHellos(false)
	})
}

// maintain is the periodic background sweep (WithMaintenance): failed
// ingress LSPs are re-signalled and adaptive keepalive recomputes.
func (s *Speaker) maintain() {
	if s.stopped || (s.cfg.until > 0 && s.clock.Now() >= s.cfg.until) {
		return
	}
	for _, base := range s.sortedBases() {
		l := s.byBase[base]
		if !l.mapped && !s.inFlight(l) {
			s.resignal(l, te.LinkKey{})
		}
	}
	s.adaptKeepalive()
	s.clock.Schedule(s.cfg.maintIvl, func() { s.maintain() })
}

// adaptKeepalive samples the control-plane receive rate since the last
// sweep and stretches keepalive pacing proportionally above the
// configured load threshold — under a message storm the sessions shed
// their own cost first.
func (s *Speaker) adaptKeepalive() {
	if s.cfg.adaptLoad <= 0 {
		return
	}
	rx := s.Stats.Rx
	rate := float64(rx-s.lastRx) / s.cfg.maintIvl
	s.lastRx = rx
	stretch := rate / s.cfg.adaptLoad
	if stretch < 1 {
		stretch = 1
	}
	for _, sess := range s.sessions {
		sess.SetKeepaliveStretch(stretch)
	}
}

// inFlight reports whether l has a request outstanding (signalled but
// not yet mapped and not failed).
func (s *Speaker) inFlight(l *lsp) bool {
	_, live := s.lsps[l.id]
	return live && !l.mapped
}

func (s *Speaker) sortedBases() []string {
	out := make([]string, 0, len(s.byBase))
	for b := range s.byBase {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// ---- ingress API ----

// Setup establishes an LSP from this node along req.Path (which must
// start here), signaling labels downstream-on-demand. done, if not
// nil, fires once — on first successful mapping or on terminal
// failure. The call itself only validates and sends the request; the
// LSP is usable when done (or OnEstablished) reports it.
func (s *Speaker) Setup(req ldp.SetupRequest, done func(error)) error {
	if err := s.validateSetup(req); err != nil {
		return err
	}
	if _, dup := s.byBase[req.ID]; dup {
		return fmt.Errorf("signaling: duplicate LSP id %q", req.ID)
	}
	l := &lsp{
		id:         req.ID + "#1",
		base:       req.ID,
		gen:        1,
		fec:        req.FEC,
		cos:        req.CoS,
		php:        req.PHP,
		bandwidth:  req.Bandwidth,
		route:      append([]string(nil), req.Path...),
		downstream: req.Path[1],
		done:       done,
	}
	s.byBase[l.base] = l
	return s.signal(l)
}

// signal reserves the local segment and sends the label request for an
// ingress LSP generation.
func (s *Speaker) signal(l *lsp) error {
	if l.bandwidth > 0 {
		if err := s.topo.Reserve([]string{s.name, l.downstream}, l.bandwidth); err != nil {
			return fmt.Errorf("signaling: %w", err)
		}
		l.reserved = true
	}
	s.lsps[l.id] = l
	s.sendRequest(l)
	s.scheduleSetupCheck(l)
	return nil
}

// scheduleSetupCheck arms the ingress establishment timer: if the
// generation is still unmapped when it fires, the request is
// retransmitted (duplicates are idempotent downstream) with backoff,
// up to the retry budget.
func (s *Speaker) scheduleSetupCheck(l *lsp) {
	delay := s.cfg.setupTimeout + s.cfg.retryBackoff*float64(l.attempts)
	s.clock.Schedule(delay, func() {
		cur, live := s.lsps[l.id]
		if !live || cur != l || l.mapped || s.stopped {
			return
		}
		l.attempts++
		s.event(telemetry.EventRetryAttempt)
		if l.attempts > s.cfg.retryMax {
			s.event(telemetry.EventRetryExhausted)
			s.fail(l, fmt.Errorf("signaling: %s: no mapping after %d attempts", l.id, l.attempts-1))
			return
		}
		s.sendRequest(l)
		s.scheduleSetupCheck(l)
	})
}

func (s *Speaker) sendRequest(l *lsp) {
	m := Message{
		Type:      MsgLabelRequest,
		Src:       s.self,
		PHP:       l.php,
		FEC:       l.fec,
		CoS:       l.cos,
		Bandwidth: l.bandwidth,
		Route:     s.routeIDs(l.route),
	}
	m.SetID(l.id)
	s.sendWhenUp(l.downstream, &m)
}

func (s *Speaker) routeIDs(route []string) []transport.NodeID {
	out := make([]transport.NodeID, len(route))
	for i, n := range route {
		out[i] = s.ids[n]
	}
	return out
}

// RequestReroute asks the LSP's ingress for a protection switch away
// from the avoid link. Called at the ingress it reroutes directly;
// anywhere else on the path it sends a Reroute message hop-by-hop
// upstream — the cross-process escalation the healer uses when the
// failure is detected away from the ingress.
func (s *Speaker) RequestReroute(base string, avoidA, avoidB string) error {
	if l, ok := s.byBase[base]; ok {
		if avoidA != "" && !routeUses(l.route, avoidA, avoidB) {
			// Already off that link (duplicate or stale request).
			return nil
		}
		s.reroute(l, te.LinkKey{From: avoidA, To: avoidB}, true)
		return nil
	}
	for _, id := range s.sortedLSPIDs() {
		l := s.lsps[id]
		if l.base != base || l.upstream == "" {
			continue
		}
		m := Message{Type: MsgReroute, Src: s.self,
			Avoid: [2]transport.NodeID{s.ids[avoidA], s.ids[avoidB]}}
		m.SetID(l.base)
		s.sendWhenUp(l.upstream, &m)
		return nil
	}
	return fmt.Errorf("signaling: %s: no LSP %q crosses this node", s.name, base)
}

func (s *Speaker) sortedLSPIDs() []string {
	out := make([]string, 0, len(s.lsps))
	for id := range s.lsps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ---- message handlers ----

func (s *Speaker) handleRequest(m *Message) {
	id := m.IDString()
	if l, ok := s.lsps[id]; ok {
		// Retransmitted request: answer or re-forward, idempotently.
		if l.inLabel != 0 {
			s.sendMapping(l)
		} else if !l.egress() {
			if s.deadToward(l.downstream) {
				// The downstream peer died while this request was parked:
				// tell the ingress which link is broken so it can route
				// around it, instead of letting it retry into a void.
				s.sendError(l, ErrCodeNoRoute, te.LinkKey{From: s.name, To: l.downstream})
				s.tearLocal(l, false)
				delete(s.lsps, id)
				return
			}
			s.sendRequest2(l)
		}
		return
	}
	route := make([]string, len(m.Route))
	idx := -1
	for i, hop := range m.Route {
		if int(hop) >= len(s.names) {
			return
		}
		route[i] = s.names[hop]
		if route[i] == s.name {
			idx = i
		}
	}
	if idx <= 0 { // not on the path, or addressed to the ingress
		return
	}
	l := &lsp{
		id:        id,
		base:      baseOf(id),
		fec:       m.FEC,
		cos:       m.CoS,
		php:       m.PHP,
		bandwidth: m.Bandwidth,
		route:     route,
		upstream:  route[idx-1],
	}
	if idx < len(route)-1 {
		l.downstream = route[idx+1]
	}
	if l.egress() {
		s.lsps[id] = l
		// The egress delivers the FEC's traffic locally. Build-time LSPs
		// get this binding from the scenario loader; a runtime-provisioned
		// LSP's destination was never in the file, so bind it here
		// (idempotent when both happen).
		s.r.AddLocal(l.fec.Dst)
		if l.php {
			// With PHP the egress receives unlabelled packets: advertise
			// implicit null and install nothing.
			l.inLabel = label.ImplicitNull
		} else {
			l.inLabel = s.allocLabel()
			if err := s.r.InstallILM(l.inLabel, swmpls.NHLFE{Op: label.OpPop}); err != nil {
				delete(s.lsps, id)
				s.sendError(l, ErrCodeBadRequest, te.LinkKey{})
				return
			}
			l.ilmInstalled = true
		}
		s.sendMapping(l)
		return
	}
	// Transit toward a peer known to be dead: fail fast with the broken
	// link named, so the ingress reroutes instead of burning its retry
	// budget retransmitting into a hole.
	if s.deadToward(l.downstream) {
		s.sendError(l, ErrCodeNoRoute, te.LinkKey{From: s.name, To: l.downstream})
		return
	}
	// Transit: admission-control the outgoing segment, then forward.
	if l.bandwidth > 0 {
		if err := s.topo.Reserve([]string{s.name, l.downstream}, l.bandwidth); err != nil {
			s.sendError(l, ErrCodeNoBandwidth, te.LinkKey{})
			return
		}
		l.reserved = true
	}
	s.lsps[id] = l
	s.sendRequest2(l)
}

// deadToward reports whether the session to peer was operational once
// and is down now — the signal that the peer is gone rather than still
// forming.
func (s *Speaker) deadToward(peer string) bool {
	sess, ok := s.sessions[peer]
	return ok && sess.Dead()
}

// sendRequest2 forwards a transit node's copy of the request
// downstream.
func (s *Speaker) sendRequest2(l *lsp) {
	m := Message{
		Type:      MsgLabelRequest,
		Src:       s.self,
		PHP:       l.php,
		FEC:       l.fec,
		CoS:       l.cos,
		Bandwidth: l.bandwidth,
		Route:     s.routeIDs(l.route),
	}
	m.SetID(l.id)
	s.sendWhenUp(l.downstream, &m)
}

func (s *Speaker) sendMapping(l *lsp) {
	if l.upstream == "" {
		return
	}
	if s.cfg.guard != nil && l.inLabel != 0 && l.inLabel != label.ImplicitNull {
		// The upstream peer will now send this label here: whitelist it
		// before the mapping leaves, so no admitted-then-dropped window
		// exists. Idempotent across retransmissions.
		s.cfg.guard.Advertise(l.upstream, l.inLabel)
	}
	m := Message{Type: MsgLabelMapping, Src: s.self, Label: l.inLabel}
	m.SetID(l.id)
	s.sendWhenUp(l.upstream, &m)
}

func (s *Speaker) handleMapping(peer string, m *Message) {
	s.Stats.MapRx++
	s.event(telemetry.EventLabelMapRx)
	l, ok := s.lsps[m.IDString()]
	if !ok || peer != l.downstream || l.mapped && !l.ingress() {
		return
	}
	l.outLabel = m.Label
	if l.ingress() {
		s.completeIngress(l)
		return
	}
	if l.inLabel == 0 {
		l.inLabel = s.allocLabel()
	}
	n := swmpls.NHLFE{NextHop: l.downstream, Op: label.OpSwap, PushLabels: []label.Label{m.Label}}
	if m.Label == label.ImplicitNull {
		// Penultimate hop of a PHP LSP: pop here, egress sees IP.
		n = swmpls.NHLFE{NextHop: l.downstream, Op: label.OpPop}
	}
	if err := s.r.InstallILM(l.inLabel, n); err != nil {
		s.sendError(l, ErrCodeBadRequest, te.LinkKey{})
		return
	}
	l.ilmInstalled = true
	l.mapped = true
	s.sendMapping(l)
}

// completeIngress installs the FTN for a freshly mapped ingress
// generation and finishes make-before-break if one is pending.
func (s *Speaker) completeIngress(l *lsp) {
	if l.mapped {
		return // duplicate mapping retransmission
	}
	n := swmpls.NHLFE{
		NextHop:    l.downstream,
		Op:         label.OpPush,
		PushLabels: []label.Label{l.outLabel},
		CoS:        l.cos,
	}
	if err := s.r.InstallFEC(l.fec.Dst, l.fec.PrefixLen, n); err != nil {
		s.fail(l, fmt.Errorf("signaling: installing FTN on %s: %w", s.name, err))
		return
	}
	l.ftnInstalled = true
	l.mapped = true
	l.attempts = 0
	if l.gen > 1 {
		s.event(telemetry.EventProtectionSwitch)
	}
	if prev := l.prev; prev != nil {
		// Make-before-break: traffic now rides the new path; give the
		// old one a drain delay, then release it downstream. The old
		// generation's FTN entry was replaced by the install above, so
		// its teardown must not remove the FEC.
		l.prev = nil
		s.clock.Schedule(s.cfg.drainDelay, func() { s.releaseGeneration(prev) })
	}
	if s.OnEstablished != nil {
		s.OnEstablished(l.base, l.route)
	}
	if l.done != nil {
		done := l.done
		l.done = nil
		done(nil)
	}
}

// releaseGeneration tears a superseded ingress generation and sends the
// release downstream so every hop frees its label and reservation.
func (s *Speaker) releaseGeneration(prev *lsp) {
	if _, live := s.lsps[prev.id]; !live {
		return
	}
	s.sendRelease(prev)
	s.tearLocal(prev, true)
	delete(s.lsps, prev.id)
}

func (s *Speaker) sendRelease(l *lsp) {
	if l.downstream == "" {
		return
	}
	m := Message{Type: MsgLabelRelease, Src: s.self}
	m.SetID(l.id)
	s.sendWhenUp(l.downstream, &m)
}

func (s *Speaker) sendWithdraw(l *lsp, avoid te.LinkKey) {
	if l.upstream == "" {
		return
	}
	m := Message{Type: MsgLabelWithdraw, Src: s.self, Label: l.inLabel,
		Avoid: [2]transport.NodeID{s.ids[avoid.From], s.ids[avoid.To]}}
	m.SetID(l.id)
	s.sendWhenUp(l.upstream, &m)
}

// sendError rejects an LSP upstream. A non-zero avoid names the link
// the rejection is about (e.g. the dead downstream session), letting
// the ingress reroute around it instead of failing terminally.
func (s *Speaker) sendError(l *lsp, code uint8, avoid te.LinkKey) {
	if l.upstream == "" {
		return
	}
	m := Message{Type: MsgError, Src: s.self, Code: code}
	if avoid != (te.LinkKey{}) {
		m.Avoid = [2]transport.NodeID{s.ids[avoid.From], s.ids[avoid.To]}
	}
	m.SetID(l.id)
	s.sendWhenUp(l.upstream, &m)
}

func (s *Speaker) handleWithdraw(peer string, m *Message) {
	s.Stats.WithdrawRx++
	s.event(telemetry.EventLabelWithdrawRx)
	l, ok := s.lsps[m.IDString()]
	if !ok || peer != l.downstream {
		return
	}
	var avoid te.LinkKey
	if (m.Avoid[0] != 0 || m.Avoid[1] != 0) &&
		int(m.Avoid[0]) < len(s.names) && int(m.Avoid[1]) < len(s.names) {
		avoid = te.LinkKey{From: s.names[m.Avoid[0]], To: s.names[m.Avoid[1]]}
	}
	s.lostDownstream(l, avoid)
}

func (s *Speaker) handleRelease(peer string, m *Message) {
	l, ok := s.lsps[m.IDString()]
	if !ok || peer != l.upstream {
		return
	}
	s.sendRelease(l)
	s.tearLocal(l, false)
	delete(s.lsps, l.id)
}

func (s *Speaker) handleReroute(m *Message) {
	base := m.IDString()
	avoidA, avoidB := "", ""
	if int(m.Avoid[0]) < len(s.names) && int(m.Avoid[1]) < len(s.names) {
		avoidA, avoidB = s.names[m.Avoid[0]], s.names[m.Avoid[1]]
	}
	// Best effort: an unknown base just means the LSP is already gone.
	_ = s.RequestReroute(base, avoidA, avoidB)
}

func (s *Speaker) handleError(m *Message) {
	l, ok := s.lsps[m.IDString()]
	if !ok {
		return
	}
	var avoid te.LinkKey
	if (m.Avoid[0] != 0 || m.Avoid[1] != 0) &&
		int(m.Avoid[0]) < len(s.names) && int(m.Avoid[1]) < len(s.names) {
		avoid = te.LinkKey{From: s.names[m.Avoid[0]], To: s.names[m.Avoid[1]]}
	}
	if l.ingress() {
		s.tearLocal(l, false)
		delete(s.lsps, l.id)
		if avoid != (te.LinkKey{}) {
			// The rejection names the broken link: this is a routing
			// failure, not a policy one — protection-switch around it.
			s.reroute(l, avoid, false)
			return
		}
		s.fail(l, fmt.Errorf("signaling: %s rejected downstream (code %d)", l.id, m.Code))
		return
	}
	s.sendError(l, m.Code, avoid)
	s.tearLocal(l, false)
	delete(s.lsps, l.id)
}

// ---- failure and reroute machinery ----

// lostDownstream handles the disappearance of an LSP's downstream
// continuation — a withdraw from below or the downstream session dying.
// Non-ingress nodes propagate the withdraw upstream; the ingress
// attempts a protection switch around the offending link.
func (s *Speaker) lostDownstream(l *lsp, avoid te.LinkKey) {
	if l.ingress() {
		s.tearLocal(l, false)
		delete(s.lsps, l.id)
		s.reroute(l, avoid, false)
		return
	}
	s.sendWithdraw(l, avoid)
	s.tearLocal(l, false)
	delete(s.lsps, l.id)
}

// lostUpstream handles the disappearance of an LSP's upstream — the
// session toward it died. Local state is freed and the release cascades
// downstream.
func (s *Speaker) lostUpstream(l *lsp) {
	s.sendRelease(l)
	s.tearLocal(l, false)
	delete(s.lsps, l.id)
}

// reroute computes a new path for an ingress LSP around avoid and
// signals it as the next generation. makeBeforeBreak keeps the old
// generation installed until the new one maps. On failure the attempt
// is retried with backoff until the retry budget runs out.
func (s *Speaker) reroute(old *lsp, avoid te.LinkKey, makeBeforeBreak bool) {
	if s.byBase[old.base] != old {
		return // superseded by a newer generation
	}
	// CSPF exclusions accumulate from three sources: this LSP's avoid
	// memory (links recent errors/withdraws named as faulty — without
	// the memory an ingress with two broken candidate paths oscillates
	// between them forever), the avoid hint that triggered this reroute,
	// and the external excluder (flap-damped links).
	now := s.clock.Now()
	exclude := map[te.LinkKey]bool{}
	mem := s.avoids[old.base]
	for k, expiry := range mem {
		if expiry <= now {
			delete(mem, k)
			continue
		}
		exclude[k] = true
	}
	if avoid != (te.LinkKey{}) {
		if mem == nil {
			mem = make(map[te.LinkKey]float64)
			s.avoids[old.base] = mem
		}
		rev := te.LinkKey{From: avoid.To, To: avoid.From}
		mem[avoid], mem[rev] = now+s.cfg.avoidHold, now+s.cfg.avoidHold
		exclude[avoid], exclude[rev] = true, true
	}
	if s.excluder != nil {
		for k, on := range s.excluder() {
			if on {
				exclude[k] = true
			}
		}
	}
	egress := old.route[len(old.route)-1]
	path, err := s.topo.CSPF(te.PathRequest{
		From:         s.name,
		To:           egress,
		BandwidthBPS: old.bandwidth,
		ExcludeLinks: exclude,
	})
	if err != nil {
		s.retryReroute(old, avoid, makeBeforeBreak)
		return
	}
	nl := &lsp{
		id:         fmt.Sprintf("%s#%d", old.base, old.gen+1),
		base:       old.base,
		gen:        old.gen + 1,
		fec:        old.fec,
		cos:        old.cos,
		php:        old.php && len(path) >= 3,
		bandwidth:  old.bandwidth,
		route:      path,
		downstream: path[1],
		attempts:   old.attempts,
		done:       old.done, // still pending when an in-flight setup reroutes
	}
	old.done = nil
	if makeBeforeBreak {
		if _, live := s.lsps[old.id]; live {
			nl.prev = old
		}
	}
	s.byBase[nl.base] = nl
	if err := s.signal(nl); err != nil {
		delete(s.lsps, nl.id)
		s.byBase[nl.base] = old
		s.retryReroute(old, avoid, makeBeforeBreak)
	}
}

func (s *Speaker) retryReroute(l *lsp, avoid te.LinkKey, makeBeforeBreak bool) {
	l.attempts++
	s.event(telemetry.EventRetryAttempt)
	if l.attempts > s.cfg.retryMax {
		s.event(telemetry.EventRetryExhausted)
		s.fail(l, fmt.Errorf("signaling: %s: reroute failed after %d attempts", l.base, l.attempts-1))
		return
	}
	s.clock.Schedule(s.cfg.retryBackoff*float64(l.attempts), func() {
		if s.stopped || s.byBase[l.base] != l || l.mapped {
			return
		}
		s.reroute(l, avoid, makeBeforeBreak)
	})
}

// resignal re-attempts an ingress LSP from scratch: fresh retry budget,
// cleared avoid memory, fresh CSPF — used when a session comes back
// after a partition killed every alternative, and by the maintenance
// sweep. Stale exclusions must not outlive the healing they reacted to.
func (s *Speaker) resignal(l *lsp, avoid te.LinkKey) {
	l.attempts = 0
	delete(s.avoids, l.base)
	s.reroute(l, avoid, false)
}

// fail reports terminal failure of an ingress LSP generation. The base
// entry stays registered so a later session-up can resignal it.
func (s *Speaker) fail(l *lsp, err error) {
	s.tearLocal(l, false)
	delete(s.lsps, l.id)
	if l.done != nil {
		done := l.done
		l.done = nil
		done(err)
	}
}

// tearLocal removes this node's installed state for one LSP
// generation: tables and bandwidth reservation. skipFEC leaves the FTN
// alone — used when a newer generation has already replaced it.
func (s *Speaker) tearLocal(l *lsp, skipFEC bool) {
	if l.ftnInstalled && !skipFEC {
		s.r.RemoveFEC(l.fec.Dst, l.fec.PrefixLen)
	}
	l.ftnInstalled = false
	if l.ilmInstalled {
		s.r.RemoveILM(l.inLabel)
		l.ilmInstalled = false
		if s.cfg.guard != nil && l.upstream != "" {
			s.cfg.guard.Withdraw(l.upstream, l.inLabel)
		}
	}
	if l.reserved {
		_ = s.topo.Release([]string{s.name, l.downstream}, l.bandwidth)
		l.reserved = false
	}
	l.mapped = false
}

func (s *Speaker) allocLabel() label.Label {
	l := s.next
	s.next++
	return l
}

func (s *Speaker) event(e telemetry.Event) {
	if s.cfg.events != nil {
		s.cfg.events.Inc(e)
	}
}

// routeUses reports whether the path crosses the a-b connection in
// either direction.
func routeUses(route []string, a, b string) bool {
	for i := 0; i+1 < len(route); i++ {
		if (route[i] == a && route[i+1] == b) || (route[i] == b && route[i+1] == a) {
			return true
		}
	}
	return false
}

// baseOf strips the generation qualifier from an LSP id.
func baseOf(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '#' {
			return id[:i]
		}
	}
	return id
}
