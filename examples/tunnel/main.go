// Tunnel: the paper's Figure 3 — two flows entering an MPLS network at
// different LERs are aggregated into one tunnel across the core and
// de-aggregated at the far side, using 2-level label stacks on embedded
// hardware routers throughout.
//
// Topology:
//
//	ler1 \                    / ler3
//	       head - mid - tail
//	ler2 /                    \ ler4
//
// flow A: ler1 -> ler3, flow B: ler2 -> ler4, both riding tunnel
// head->mid->tail.
package main

import (
	"fmt"
	"log"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/trafficgen"
)

func main() {
	nodes := []router.NodeSpec{
		{Name: "ler1", Hardware: true, RouterType: lsm.LER},
		{Name: "ler2", Hardware: true, RouterType: lsm.LER},
		{Name: "head", Hardware: true, RouterType: lsm.LSR},
		{Name: "mid", Hardware: true, RouterType: lsm.LSR},
		{Name: "tail", Hardware: true, RouterType: lsm.LSR},
		{Name: "ler3", Hardware: true, RouterType: lsm.LER},
		{Name: "ler4", Hardware: true, RouterType: lsm.LER},
	}
	var links []router.LinkSpec
	for _, pair := range [][2]string{
		{"ler1", "head"}, {"ler2", "head"},
		{"head", "mid"}, {"mid", "tail"},
		{"tail", "ler3"}, {"tail", "ler4"},
	} {
		links = append(links, router.LinkSpec{A: pair[0], B: pair[1], RateBPS: 10e6, Delay: 0.001})
	}
	net, err := router.Build(nodes, links)
	check(err)

	// One tunnel across the core; the paper's "LSP (TUNNEL)" at level 2.
	_, err = net.LDP.SetupTunnel("core-tunnel", []string{"head", "mid", "tail"}, 4e6)
	check(err)

	dstA := packet.AddrFrom(10, 3, 0, 1)
	dstB := packet.AddrFrom(10, 4, 0, 1)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "flowA", FEC: ldp.FEC{Dst: dstA, PrefixLen: 32},
		Path: []string{"ler1", "head", "tail", "ler3"}, Bandwidth: 1e6,
	})
	check(err)
	_, err = net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "flowB", FEC: ldp.FEC{Dst: dstB, PrefixLen: 32},
		Path: []string{"ler2", "head", "tail", "ler4"}, Bandwidth: 1e6,
	})
	check(err)

	collector := trafficgen.NewCollector(net.Sim)
	collector.Attach(net.Router("ler3"))
	collector.Attach(net.Router("ler4"))

	const runFor = 2.0
	trafficgen.CBR{
		Flow: trafficgen.Flow{ID: 1, Src: packet.AddrFrom(10, 1, 0, 1), Dst: dstA},
		Size: 512, Interval: 0.005, Stop: runFor,
	}.Install(net.Sim, net.Router("ler1"), collector)
	trafficgen.CBR{
		Flow: trafficgen.Flow{ID: 2, Src: packet.AddrFrom(10, 2, 0, 1), Dst: dstB},
		Size: 512, Interval: 0.005, Stop: runFor,
	}.Install(net.Sim, net.Router("ler2"), collector)

	net.Sim.Run()

	fmt.Println("Figure 3 scenario: two flows aggregated through one core tunnel")
	fmt.Println()
	for _, id := range collector.FlowIDs() {
		f := collector.Flow(id)
		fmt.Printf("flow %d: sent=%d delivered=%d loss=%.1f%% latency %s\n",
			id, f.Sent.Events, f.Delivered.Events, 100*f.LossRate(),
			f.Latency.Summary("ms", 1e3))
	}
	fmt.Println()
	// The shared head->mid link carried both flows with stacked labels.
	l, _ := net.Router("head").SimLink("mid")
	fmt.Printf("aggregated tunnel link head->mid: %d packets, %.1f%% utilised\n",
		l.Delivered.Events, 100*l.Utilisation())
	for _, name := range []string{"ler1", "head", "mid", "tail", "ler3"} {
		fmt.Printf("  %v\n", net.Router(name))
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
