package router

import (
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
)

// rerouteTrafficRun drives a CBR flow through the diamond while a
// reroute from a-b-d to a-c-d commits at rerouteAt; failAt < 0 keeps
// the a-b link up (pure make-before-break). It returns sent, delivered,
// how many packets the failed link ate, and the count of intra-flow
// sequence inversions seen at the egress.
func rerouteTrafficRun(t *testing.T, failAt, rerouteAt float64) (sent, delivered int, linkLost uint64, inversions int) {
	t.Helper()
	n := diamondNet(t)
	dst := packet.AddrFrom(10, 0, 0, 9)
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
	}); err != nil {
		t.Fatal(err)
	}

	var lastSeq uint64
	n.Router("d").OnDeliver = func(p *packet.Packet) {
		delivered++
		if p.SeqNo <= lastSeq {
			inversions++
		}
		lastSeq = p.SeqNo
	}

	for i := 0; i < 200; i++ {
		i := i
		n.Sim.Schedule(float64(i)*0.0005, func() {
			p := packet.New(1, dst, 64, make([]byte, 64))
			p.Header.FlowID = 7
			p.SeqNo = uint64(i + 1)
			n.Router("a").Inject(p)
			sent++
		})
	}

	if failAt >= 0 {
		n.Sim.Schedule(failAt, func() {
			if err := n.SetLinkDown("a", "b", true); err != nil {
				t.Error(err)
			}
		})
	}
	n.Sim.Schedule(rerouteAt, func() {
		brk, err := n.LDP.RerouteDeferred("l", []string{"a", "c", "d"})
		if err != nil {
			t.Error(err)
			return
		}
		// Break the old path once the longest in-flight packet (two
		// 1 ms hops plus transmission) has surely drained.
		n.Sim.Schedule(0.02, brk)
	})
	n.Sim.Run()

	lab, _ := n.Router("a").SimLink("b")
	return sent, delivered, lab.Lost.Events, inversions
}

// TestRerouteUnderTrafficLossless commits a make-before-break reroute
// mid-flow with both paths healthy: every packet must arrive, in order.
func TestRerouteUnderTrafficLossless(t *testing.T) {
	sent, delivered, _, inversions := rerouteTrafficRun(t, -1, 0.05)
	if sent != 200 {
		t.Fatalf("sent %d, want 200", sent)
	}
	if delivered != sent {
		t.Errorf("delivered %d of %d: make-before-break dropped packets", delivered, sent)
	}
	if inversions != 0 {
		t.Errorf("%d intra-flow inversions across the reroute", inversions)
	}
}

// TestRerouteUnderTrafficAfterFailure downs the primary link mid-flow
// and reroutes shortly after: the only packets lost are the ones the
// dead link ate during the detection window, and delivery stays in
// order.
func TestRerouteUnderTrafficAfterFailure(t *testing.T) {
	sent, delivered, linkLost, inversions := rerouteTrafficRun(t, 0.050, 0.060)
	if inversions != 0 {
		t.Errorf("%d intra-flow inversions across failure + reroute", inversions)
	}
	if linkLost == 0 {
		t.Error("the downed link lost nothing — the fault never bit")
	}
	if got, want := uint64(sent-delivered), linkLost; got != want {
		t.Errorf("missing %d packets but the failed link accounts for %d — drops beyond the injected fault",
			got, want)
	}
	// The blackout window is 10 ms at 2000 pps: roughly 20 packets, plus
	// in-flight slack.
	if lost := sent - delivered; lost > 25 {
		t.Errorf("lost %d packets for a 10 ms outage window", lost)
	}
}
