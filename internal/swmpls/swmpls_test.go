package swmpls

import (
	"math/rand"
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

func mustMapFEC(t *testing.T, f *Forwarder, dst packet.Addr, plen int, n NHLFE) {
	t.Helper()
	if err := f.MapFEC(dst, plen, n); err != nil {
		t.Fatal(err)
	}
}

func mustMapLabel(t *testing.T, f *Forwarder, in label.Label, n NHLFE) {
	t.Helper()
	if err := f.MapLabel(in, n); err != nil {
		t.Fatal(err)
	}
}

func TestNHLFEValidate(t *testing.T) {
	cases := []struct {
		name string
		n    NHLFE
		ok   bool
	}{
		{"push one", NHLFE{Op: label.OpPush, PushLabels: []label.Label{100}}, true},
		{"push three", NHLFE{Op: label.OpPush, PushLabels: []label.Label{100, 101, 102}}, true},
		{"push none", NHLFE{Op: label.OpPush}, false},
		{"push four", NHLFE{Op: label.OpPush, PushLabels: []label.Label{1, 2, 3, 4}}, false},
		{"swap one", NHLFE{Op: label.OpSwap, PushLabels: []label.Label{100}}, true},
		{"swap none", NHLFE{Op: label.OpSwap}, false},
		{"pop", NHLFE{Op: label.OpPop}, true},
		{"pop with label", NHLFE{Op: label.OpPop, PushLabels: []label.Label{1}}, false},
		{"none op", NHLFE{Op: label.OpNone}, false},
		{"reserved label", NHLFE{Op: label.OpPush, PushLabels: []label.Label{label.RouterAlert}}, false},
		{"oversized label", NHLFE{Op: label.OpPush, PushLabels: []label.Label{label.MaxLabel + 1}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.n.Validate(); (err == nil) != c.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", c.n, err, c.ok)
			}
		})
	}
}

func TestIngressPushAndTTL(t *testing.T) {
	f := New()
	mustMapFEC(t, f, packet.AddrFrom(10, 1, 0, 0), 16, NHLFE{NextHop: "lsr1", Op: label.OpPush, PushLabels: []label.Label{100}, CoS: 5})

	p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 1, 2, 3), 64, nil)
	res := f.Forward(p)
	if res.Action != Forward || res.NextHop != "lsr1" {
		t.Fatalf("result = %+v", res)
	}
	top, _ := p.Stack.Top()
	if top.Label != 100 || top.TTL != 63 || top.CoS != 5 || !top.Bottom {
		t.Errorf("pushed entry = %v", top)
	}

	// No route.
	q := packet.New(1, packet.AddrFrom(172, 16, 0, 1), 64, nil)
	if res := f.Forward(q); res.Action != Drop || res.Drop != DropNoRoute {
		t.Errorf("no-route result = %+v", res)
	}

	// TTL 1 expires at ingress.
	r := packet.New(1, packet.AddrFrom(10, 1, 2, 3), 1, nil)
	if res := f.Forward(r); res.Action != Drop || res.Drop != DropTTLExpired {
		t.Errorf("ttl result = %+v", res)
	}
}

func TestLongestPrefixMatchWins(t *testing.T) {
	f := New()
	mustMapFEC(t, f, packet.AddrFrom(10, 0, 0, 0), 8, NHLFE{NextHop: "coarse", Op: label.OpPush, PushLabels: []label.Label{100}})
	mustMapFEC(t, f, packet.AddrFrom(10, 1, 0, 0), 16, NHLFE{NextHop: "fine", Op: label.OpPush, PushLabels: []label.Label{200}})

	p := packet.New(1, packet.AddrFrom(10, 1, 9, 9), 64, nil)
	if res := f.Forward(p); res.NextHop != "fine" {
		t.Errorf("next hop = %q, want fine", res.NextHop)
	}
	q := packet.New(1, packet.AddrFrom(10, 2, 9, 9), 64, nil)
	if res := f.Forward(q); res.NextHop != "coarse" {
		t.Errorf("next hop = %q, want coarse", res.NextHop)
	}
}

func TestDefaultRouteZeroLengthPrefix(t *testing.T) {
	f := New()
	mustMapFEC(t, f, 0, 0, NHLFE{NextHop: "default", Op: label.OpPush, PushLabels: []label.Label{99}})
	p := packet.New(1, packet.AddrFrom(8, 8, 8, 8), 64, nil)
	if res := f.Forward(p); res.Action != Forward || res.NextHop != "default" {
		t.Errorf("default route result = %+v", res)
	}
}

func TestSwapPreservesCoSDecrementsTTL(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 100, NHLFE{NextHop: "next", Op: label.OpSwap, PushLabels: []label.Label{200}})
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, CoS: 3, TTL: 10})
	res := f.Forward(p)
	if res.Action != Forward || res.NextHop != "next" {
		t.Fatalf("result = %+v", res)
	}
	top, _ := p.Stack.Top()
	if top.Label != 200 || top.CoS != 3 || top.TTL != 9 {
		t.Errorf("top = %v, want lbl=200 cos=3 ttl=9", top)
	}
}

func TestPopToEmptyDeliversAndWritesTTLBack(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 100, NHLFE{Op: label.OpPop})
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, TTL: 7})
	res := f.Forward(p)
	if res.Action != Deliver {
		t.Fatalf("result = %+v", res)
	}
	if p.Labelled() || p.Header.TTL != 6 {
		t.Errorf("after pop: labelled=%v ip ttl=%d, want unlabelled ttl=6", p.Labelled(), p.Header.TTL)
	}
}

func TestPopWithNextHopForwards(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 100, NHLFE{NextHop: "penult", Op: label.OpPop})
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 50, TTL: 20})
	_ = p.Stack.Push(label.Entry{Label: 100, TTL: 8})
	res := f.Forward(p)
	if res.Action != Forward || res.NextHop != "penult" {
		t.Fatalf("result = %+v", res)
	}
	top, _ := p.Stack.Top()
	// TTL propagation to the exposed entry.
	if top.Label != 50 || top.TTL != 7 {
		t.Errorf("exposed top = %v, want lbl=50 ttl=7", top)
	}
}

func TestTunnelPushOnLabelled(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 100, NHLFE{NextHop: "tun", Op: label.OpPush, PushLabels: []label.Label{500}})
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 100, CoS: 2, TTL: 30})
	res := f.Forward(p)
	if res.Action != Forward {
		t.Fatalf("result = %+v", res)
	}
	if p.Stack.Depth() != 2 {
		t.Fatalf("depth = %d", p.Stack.Depth())
	}
	top, _ := p.Stack.Top()
	below, _ := p.Stack.At(0)
	if top.Label != 500 || top.TTL != 29 || top.CoS != 2 {
		t.Errorf("tunnel label = %v", top)
	}
	if below.Label != 100 || below.TTL != 29 {
		t.Errorf("inner label = %v", below)
	}
}

func TestTransitDrops(t *testing.T) {
	f := New()
	mustMapLabel(t, f, 1000, NHLFE{NextHop: "x", Op: label.OpSwap, PushLabels: []label.Label{1001}})

	// Unknown label.
	p := packet.New(1, 2, 64, nil)
	_ = p.Stack.Push(label.Entry{Label: 42, TTL: 9})
	if res := f.Forward(p); res.Drop != DropNoLabel {
		t.Errorf("unknown label: %+v", res)
	}
	// Expired TTL.
	q := packet.New(1, 2, 64, nil)
	_ = q.Stack.Push(label.Entry{Label: 1000, TTL: 1})
	if res := f.Forward(q); res.Drop != DropTTLExpired {
		t.Errorf("ttl: %+v", res)
	}
	// Stack overflow on tunnel push.
	mustMapLabel(t, f, 2000, NHLFE{NextHop: "x", Op: label.OpPush, PushLabels: []label.Label{2001}})
	r := packet.New(1, 2, 64, nil)
	_ = r.Stack.Push(label.Entry{Label: 1, TTL: 9})
	_ = r.Stack.Push(label.Entry{Label: 2, TTL: 9})
	_ = r.Stack.Push(label.Entry{Label: 2000, TTL: 9})
	if res := f.Forward(r); res.Drop != DropStackOverflow {
		t.Errorf("overflow: %+v", res)
	}
}

func TestMapErrors(t *testing.T) {
	f := New()
	if err := f.MapFEC(0, 33, NHLFE{Op: label.OpPush, PushLabels: []label.Label{100}}); err == nil {
		t.Error("prefix length 33 accepted")
	}
	if err := f.MapFEC(0, 8, NHLFE{Op: label.OpSwap, PushLabels: []label.Label{100}}); err == nil {
		t.Error("non-push FTN entry accepted")
	}
	if err := f.MapLabel(label.ImplicitNull, NHLFE{Op: label.OpPop}); err == nil {
		t.Error("reserved incoming label accepted")
	}
	if err := f.MapLabel(label.MaxLabel+1, NHLFE{Op: label.OpPop}); err == nil {
		t.Error("oversized incoming label accepted")
	}
}

func TestUnmap(t *testing.T) {
	f := New()
	mustMapFEC(t, f, packet.AddrFrom(10, 0, 0, 0), 8, NHLFE{NextHop: "a", Op: label.OpPush, PushLabels: []label.Label{100}})
	mustMapLabel(t, f, 100, NHLFE{NextHop: "b", Op: label.OpPop})
	if f.ILMSize() != 1 {
		t.Fatalf("ILM size = %d", f.ILMSize())
	}
	if !f.UnmapFEC(packet.AddrFrom(10, 0, 0, 0), 8) {
		t.Error("UnmapFEC missed the binding")
	}
	if f.UnmapFEC(packet.AddrFrom(10, 0, 0, 0), 8) {
		t.Error("UnmapFEC reported a second removal")
	}
	if f.UnmapFEC(packet.AddrFrom(99, 0, 0, 0), 24) {
		t.Error("UnmapFEC removed an absent prefix")
	}
	f.UnmapLabel(100)
	if f.ILMSize() != 0 {
		t.Error("UnmapLabel did not remove the binding")
	}
	p := packet.New(1, packet.AddrFrom(10, 1, 1, 1), 64, nil)
	if res := f.Forward(p); res.Drop != DropNoRoute {
		t.Errorf("after unmap: %+v", res)
	}
}

// TestPrefixTrieAgainstLinearModel fuzzes the trie against a brute-force
// longest-prefix scan.
func TestPrefixTrieAgainstLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trie := newPrefixTable()
	type pfx struct {
		addr packet.Addr
		len  int
		n    NHLFE
	}
	var model []pfx
	mask := func(a packet.Addr, l int) packet.Addr {
		if l == 0 {
			return 0
		}
		return a &^ (1<<(32-l) - 1)
	}
	for i := 0; i < 200; i++ {
		a := packet.Addr(rng.Uint32())
		l := rng.Intn(33)
		n := NHLFE{NextHop: string(rune('a' + i%26)), Op: label.OpPush, PushLabels: []label.Label{label.Label(16 + i)}}
		if err := trie.insert(a, l, n); err != nil {
			t.Fatal(err)
		}
		// Model stores canonical (masked) prefixes; later inserts of the
		// same prefix replace earlier ones.
		ca := mask(a, l)
		replaced := false
		for j := range model {
			if model[j].addr == ca && model[j].len == l {
				model[j].n = n
				replaced = true
				break
			}
		}
		if !replaced {
			model = append(model, pfx{ca, l, n})
		}
	}
	for trial := 0; trial < 2000; trial++ {
		q := packet.Addr(rng.Uint32())
		if trial%3 == 0 && len(model) > 0 {
			// Bias toward addresses under known prefixes.
			q = model[rng.Intn(len(model))].addr | packet.Addr(rng.Intn(256))
		}
		var want *pfx
		for j := range model {
			m := &model[j]
			if mask(q, m.len) == m.addr && (want == nil || m.len > want.len) {
				want = m
			}
		}
		got, ok := trie.lookup(q)
		if want == nil {
			if ok {
				t.Fatalf("trial %d: lookup(%v) found %+v, model says none", trial, q, got)
			}
			continue
		}
		if !ok || got.NextHop != want.n.NextHop {
			t.Fatalf("trial %d: lookup(%v) = %+v ok=%v, want %+v", trial, q, got, ok, want.n)
		}
	}
}
