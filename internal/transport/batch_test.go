package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"embeddedmpls/internal/packet"
)

// TestCoalescedDelivery sends through a coalescing link with plain Send
// calls: packets must arrive intact and attributed, packed many to a
// datagram.
func TestCoalescedDelivery(t *testing.T) {
	opts := []Option{WithCoalesce(8), WithSysBatch(16)}
	d, _, sb := newPair(t, opts, opts)
	const n = 40
	for i := 0; i < n; i++ {
		d.A.Send(labelled(uint64(i)))
	}
	got := sb.wait(t, n)
	for i, in := range got {
		if in.From != "a" {
			t.Errorf("packet %d attributed to %q, want a", i, in.From)
		}
		if in.P.SeqNo != uint64(i) {
			t.Errorf("packet %d has seq %d: reordered or lost", i, in.P.SeqNo)
		}
	}
	m := d.A.Metrics()
	if tx := m.TxPackets.Load(); tx != n {
		t.Errorf("TxPackets = %d, want %d", tx, n)
	}
	if dg := m.TxDatagrams.Load(); dg >= n {
		t.Errorf("TxDatagrams = %d for %d packets: nothing coalesced", dg, n)
	}
}

// TestSendBatchDelivery drives the bulk path end to end: one SendBatch
// call, coalesced frames, batched syscalls, all packets out the far
// side with per-datagram and per-syscall counts showing the
// amortisation.
func TestSendBatchDelivery(t *testing.T) {
	opts := []Option{WithCoalesce(16), WithSysBatch(8)}
	d, _, sb := newPair(t, opts, opts)
	const n = 100
	ps := make([]*packet.Packet, n)
	for i := range ps {
		ps[i] = labelled(uint64(i))
	}
	d.A.SendBatch(ps)
	got := sb.wait(t, n)
	seen := make(map[uint64]bool, n)
	for _, in := range got {
		if in.From != "a" {
			t.Errorf("packet attributed to %q, want a", in.From)
		}
		seen[in.P.SeqNo] = true
	}
	if len(seen) != n {
		t.Errorf("delivered %d distinct packets, want %d", len(seen), n)
	}
	m := d.A.Metrics()
	if tx := m.TxPackets.Load(); tx != n {
		t.Errorf("TxPackets = %d, want %d", tx, n)
	}
	// 100 packets at 16 per frame is 7 datagrams; at 8 datagrams per
	// sendmmsg that is a syscall or two.
	if dg := m.TxDatagrams.Load(); dg > (n+15)/16 {
		t.Errorf("TxDatagrams = %d, want <= %d", dg, (n+15)/16)
	}
	if spp := m.SyscallsPerPacket(); spp > 0.2 {
		t.Errorf("syscalls/packet = %.3f, want <= 0.2 on the batched path", spp)
	}
}

// TestSendBatchUncoalesced exercises SendBatch with coalescing off: one
// datagram per packet, still batched into few syscalls where the
// platform has sendmmsg.
func TestSendBatchUncoalesced(t *testing.T) {
	opts := []Option{WithSysBatch(32)}
	d, _, sb := newPair(t, opts, opts)
	const n = 64
	ps := make([]*packet.Packet, n)
	for i := range ps {
		ps[i] = labelled(uint64(i))
	}
	d.A.SendBatch(ps)
	sb.wait(t, n)
	m := d.A.Metrics()
	if dg := m.TxDatagrams.Load(); dg != n {
		t.Errorf("TxDatagrams = %d, want %d with coalescing off", dg, n)
	}
	if haveMmsg {
		if sys := m.TxSyscalls.Load(); sys >= n {
			t.Errorf("TxSyscalls = %d for %d datagrams: sendmmsg not batching", sys, n)
		}
	}
}

// TestBatchedPathAllocs pins the steady-state allocation cost of the
// batched wire path at zero: encode buffers, frame state,
// scatter/gather arrays and syscall closures are all reused.
func TestBatchedPathAllocs(t *testing.T) {
	// The send side writes into a socket nobody reads — kernel-side
	// drops keep the test single-goroutine, which AllocsPerRun needs.
	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sinkConn.Close()
	l, err := Dial("a", "b", sinkConn.LocalAddr().String(),
		WithCoalesce(32), WithSysBatch(32))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ps := make([]*packet.Packet, 64)
	for i := range ps {
		ps[i] = labelled(uint64(i))
	}
	l.SendBatch(ps) // warm up: grow scratch to steady-state capacity
	if allocs := testing.AllocsPerRun(100, func() { l.SendBatch(ps) }); allocs != 0 {
		t.Errorf("SendBatch allocates %.1f times per call, want 0", allocs)
	}

	// Receive side, white box: drive the datagram decoder directly with
	// a prepared coalesced frame. The read loop is stopped first so the
	// ingest path runs single-goroutine.
	r, err := Listen("127.0.0.1:0", func([]Inbound) {}, WithSysBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	fr := BeginFrame(nil)
	for i := 0; i < 32; i++ {
		if err := fr.Append(ps[i], 1); err != nil {
			t.Fatal(err)
		}
	}
	frame, err := fr.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r.ingestDatagram(frame) // warm up batch-slot storage
	if allocs := testing.AllocsPerRun(100, func() { r.ingestDatagram(frame) }); allocs != 0 {
		t.Errorf("ingestDatagram allocates %.1f times per frame, want 0", allocs)
	}
}

// TestShardedDelivery checks the SO_REUSEPORT contract: several
// connected senders into one sharded group, every packet arrives
// exactly once, and each sender's packets all land on one shard — the
// kernel's 4-tuple hash is sticky, so a shard worker owns its senders.
func TestShardedDelivery(t *testing.T) {
	if !haveMmsg {
		t.Skip("sharded sockets need SO_REUSEPORT (linux)")
	}
	const shards, senders, perSender = 2, 8, 25
	names := make([]string, senders)
	for i := range names {
		names[i] = string(rune('a' + i))
	}

	var mu sync.Mutex
	bySender := make(map[string]map[int]int) // sender -> shard -> packets
	sink := func(shard int) func(batch []Inbound) {
		return func(batch []Inbound) {
			mu.Lock()
			defer mu.Unlock()
			for _, in := range batch {
				m := bySender[in.From]
				if m == nil {
					m = make(map[int]int)
					bySender[in.From] = m
				}
				m[shard]++
			}
		}
	}
	sr, err := ListenSharded("127.0.0.1:0", shards, sink, WithNames(names))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if sr.Shards() != shards {
		t.Fatalf("Shards = %d, want %d", sr.Shards(), shards)
	}

	for i := 0; i < senders; i++ {
		l, err := Dial(names[i], "rx", sr.Addr().String(),
			WithSource(NodeID(i)), WithCoalesce(4), WithSysBatch(8))
		if err != nil {
			t.Fatal(err)
		}
		ps := make([]*packet.Packet, perSender)
		for j := range ps {
			ps[j] = labelled(uint64(j))
		}
		l.SendBatch(ps)
		l.Close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		total := 0
		for _, m := range bySender {
			for _, n := range m {
				total += n
			}
		}
		mu.Unlock()
		if total >= senders*perSender {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d packets arrived", total, senders*perSender)
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for sender, m := range bySender {
		if len(m) != 1 {
			t.Errorf("sender %q spread across %d shards %v, want exactly 1", sender, len(m), m)
		}
		got := 0
		for _, n := range m {
			got += n
		}
		if got != perSender {
			t.Errorf("sender %q delivered %d packets, want %d", sender, got, perSender)
		}
	}
}

// TestShardedCloseUnderLoad is the teardown race regression: shard
// sockets close while senders hammer the group from several goroutines.
// Run under -race; the only requirement is no race, no panic, no hang.
func TestShardedCloseUnderLoad(t *testing.T) {
	if !haveMmsg {
		t.Skip("sharded sockets need SO_REUSEPORT (linux)")
	}
	sr, err := ListenSharded("127.0.0.1:0", 4, func(int) func(batch []Inbound) {
		return func([]Inbound) {}
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		l, err := Dial("a", "rx", sr.Addr().String(), WithCoalesce(8), WithSysBatch(8))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(l *UDPLink) {
			defer wg.Done()
			defer l.Close()
			ps := make([]*packet.Packet, 32)
			for j := range ps {
				ps[j] = labelled(uint64(j))
			}
			for {
				select {
				case <-stop:
					return
				default:
					l.SendBatch(ps)
					l.Send(labelled(0))
				}
			}
		}(l)
	}

	time.Sleep(20 * time.Millisecond)
	if err := sr.Close(); err != nil {
		t.Errorf("Close under load: %v", err)
	}
	if err := sr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	close(stop)
	wg.Wait()
}
