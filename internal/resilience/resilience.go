// Package resilience is the self-healing control plane: it closes the
// feedback loop between the data plane's failure signals and the label
// distribution layer's repair actions. Three detectors feed one healer:
//
//   - keepalive probes per adjacency, with a miss-count threshold, catch
//     hard link failures (Monitor);
//   - per-LSP health tracking over telemetry drop counters catches
//     silent degradation — corruption that the paper's lookup-miss
//     discard kills one hop downstream — that keepalives cannot see
//     (HealthTracker);
//   - failed control-plane writes (fault-injected information-base or
//     table-publish errors) surface as Reroute/SetupLSP errors and are
//     absorbed by exponential-backoff retries (Retryer).
//
// The healer precomputes link-disjoint backup paths per protected LSP
// and switches make-before-break through ldp.Reroute, so repair uses the
// same ordered-downstream installation as setup and no packet ever sees
// a half-installed path.
//
// Everything runs on an injected Clock (the discrete-event simulator in
// tests and scenarios), so recovery timelines are deterministic: same
// seed, same schedule, same timeline — and no test ever sleeps.
package resilience

import (
	"fmt"
	"strings"
)

// Clock is the injected time source: netsim.Simulator satisfies it
// directly. All delays are in (simulated) seconds.
type Clock interface {
	Now() float64
	Schedule(delay float64, f func())
}

// Event is one entry of a recovery timeline.
type Event struct {
	At   float64
	What string
}

// String renders the entry as one timeline line.
func (e Event) String() string { return fmt.Sprintf("t=%.4fs  %s", e.At, e.What) }

// Timeline collects detection and recovery events in occurrence order.
// The zero value is ready to use. It is not safe for concurrent use —
// like the simulator it rides, it is a single-threaded structure.
type Timeline struct {
	events []Event
}

// Add appends a formatted event at the given time.
func (t *Timeline) Add(at float64, format string, args ...any) {
	t.events = append(t.events, Event{At: at, What: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events in order.
func (t *Timeline) Events() []Event { return append([]Event(nil), t.events...) }

// Len returns the number of recorded events.
func (t *Timeline) Len() int { return len(t.events) }

// String renders the timeline one event per line — the -chaos report.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
