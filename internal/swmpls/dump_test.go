package swmpls

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// TestILMEntriesSorted checks the dump is sorted by incoming label and
// identical across every ILM backing.
func TestILMEntriesSorted(t *testing.T) {
	for _, kind := range []ILMKind{ILMMap, ILMLinear, ILMIndexed} {
		f := New(WithILM(kind))
		want := []label.Label{17, 42, 1000, 99}
		for _, in := range want {
			if err := f.MapLabel(in, NHLFE{NextHop: "b", Op: label.OpSwap, PushLabels: []label.Label{in + 1}}); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		got := f.ILMEntries()
		if len(got) != len(want) {
			t.Fatalf("%v: %d entries, want %d", kind, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].In >= got[i].In {
				t.Errorf("%v: entries not sorted: %d before %d", kind, got[i-1].In, got[i].In)
			}
		}
		for _, e := range got {
			if e.NHLFE.Op != label.OpSwap || len(e.NHLFE.PushLabels) != 1 || e.NHLFE.PushLabels[0] != e.In+1 {
				t.Errorf("%v: entry %d carries wrong NHLFE %+v", kind, e.In, e.NHLFE)
			}
		}
	}
}

// TestFECEntriesWalk checks the FTN dump reconstructs prefixes from the
// trie, sorted by address then prefix length.
func TestFECEntriesWalk(t *testing.T) {
	f := New()
	type fec struct {
		dst  packet.Addr
		plen int
	}
	fecs := []fec{
		{packet.AddrFrom(10, 0, 0, 9), 32},
		{packet.AddrFrom(10, 0, 0, 0), 8},
		{packet.AddrFrom(192, 168, 1, 0), 24},
		{packet.AddrFrom(10, 0, 0, 8), 30},
	}
	for i, x := range fecs {
		n := NHLFE{NextHop: "b", Op: label.OpPush, PushLabels: []label.Label{label.Label(100 + i)}}
		if err := f.MapFEC(x.dst, x.plen, n); err != nil {
			t.Fatal(err)
		}
	}
	got := f.FECEntries()
	if len(got) != len(fecs) {
		t.Fatalf("%d entries, want %d", len(got), len(fecs))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Dst > b.Dst || (a.Dst == b.Dst && a.PrefixLen >= b.PrefixLen) {
			t.Errorf("entries not sorted at %d: %v/%d before %v/%d", i, a.Dst, a.PrefixLen, b.Dst, b.PrefixLen)
		}
	}
	// Every mapped FEC reappears exactly, address bits reconstructed
	// from the trie path.
	seen := map[fec]bool{}
	for _, e := range got {
		seen[fec{e.Dst, e.PrefixLen}] = true
	}
	for _, x := range fecs {
		if !seen[x] {
			t.Errorf("FEC %v/%d missing from dump", x.dst, x.plen)
		}
	}
	// Unmapping removes from the dump.
	f.UnmapFEC(packet.AddrFrom(10, 0, 0, 0), 8)
	if got := f.FECEntries(); len(got) != len(fecs)-1 {
		t.Errorf("after unmap: %d entries, want %d", len(got), len(fecs)-1)
	}
}

// TestDumpsEmpty checks empty tables dump as empty, not nil-panic.
func TestDumpsEmpty(t *testing.T) {
	f := New()
	if got := f.ILMEntries(); len(got) != 0 {
		t.Errorf("empty ILM dumped %d entries", len(got))
	}
	if got := f.FECEntries(); len(got) != 0 {
		t.Errorf("empty FTN dumped %d entries", len(got))
	}
}
