package signaling

import (
	"strings"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/packet"
)

// TestProvisionFreshAndList provisions a brand-new LSP through the
// management surface and checks every node's List view of it.
func TestProvisionFreshAndList(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Provision(ldp.SetupRequest{
		ID:   "m1",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)

	la := speakers["a"].List()
	if len(la) != 1 {
		t.Fatalf("ingress List = %d LSPs, want 1", len(la))
	}
	got := la[0]
	if got.ID != "m1" || got.Gen != 1 || got.Role != "ingress" || !got.Established || got.Pending {
		t.Errorf("ingress view = %+v", got)
	}
	if got.FEC != "10.0.0.9/32" {
		t.Errorf("FEC = %q, want 10.0.0.9/32", got.FEC)
	}
	if strings.Join(got.Route, ",") != "a,b,d" {
		t.Errorf("route = %v", got.Route)
	}
	lb := speakers["b"].List()
	if len(lb) != 1 || lb[0].Role != "transit" {
		t.Errorf("transit view = %+v", lb)
	}
	ld := speakers["d"].List()
	if len(ld) != 1 || ld[0].Role != "egress" {
		t.Errorf("egress view = %+v", ld)
	}
}

// TestProvisionMakeBeforeBreak re-provisions a live LSP onto the backup
// path and checks the generation bumps, traffic switches, and the old
// generation's transit state drains away.
func TestProvisionMakeBeforeBreak(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	delivered := deliveredCounter(t, net, "d", dst)
	net.Sim.RunUntil(0.3)
	if err := speakers["a"].Provision(ldp.SetupRequest{
		ID:   "m2",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)

	// Operator-driven re-provision onto the expensive path.
	if err := speakers["a"].Provision(ldp.SetupRequest{
		ID:   "m2",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "c", "d"},
	}, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(1.2) // map + drain delay

	la := speakers["a"].List()
	if len(la) != 1 {
		t.Fatalf("ingress List = %+v, want exactly the new generation", la)
	}
	if la[0].Gen != 2 || strings.Join(la[0].Route, ",") != "a,c,d" || !la[0].Established {
		t.Errorf("after MBB: %+v", la[0])
	}
	// The superseded generation must be gone from the old transit hop.
	if lb := speakers["b"].List(); len(lb) != 0 {
		t.Errorf("old transit b still holds %+v", lb)
	}
	// And the new path forwards.
	if lc := speakers["c"].List(); len(lc) != 1 {
		t.Errorf("new transit c holds %+v, want 1 LSP", lc)
	}
	sendProbePacket(net, "a", dst)
	net.Sim.RunUntil(1.3)
	if *delivered != 1 {
		t.Errorf("delivered = %d, want 1 via the re-provisioned path", *delivered)
	}
}

// TestTeardownReleasesEveryHop tears a live LSP down and checks label
// state evaporates on all three hops and the id becomes reusable.
func TestTeardownReleasesEveryHop(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	net.Sim.RunUntil(0.3)
	req := ldp.SetupRequest{
		ID:   "m3",
		FEC:  ldp.FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"},
	}
	if err := speakers["a"].Provision(req, nil); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.6)
	if err := speakers["a"].Teardown("m3"); err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(0.9)
	for _, n := range []string{"a", "b", "d"} {
		if l := speakers[n].List(); len(l) != 0 {
			t.Errorf("%s still holds %+v after teardown", n, l)
		}
	}
	if err := speakers["a"].Teardown("m3"); err == nil {
		t.Error("second teardown of the same id succeeded")
	}
	// The base id is free again.
	if err := speakers["a"].Provision(req, nil); err != nil {
		t.Errorf("re-provision after teardown: %v", err)
	}
}

// TestProvisionValidation exercises the request checks shared with
// Setup.
func TestProvisionValidation(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(2))
	if err != nil {
		t.Fatal(err)
	}
	dst := ldp.FEC{Dst: packet.AddrFrom(10, 0, 0, 9), PrefixLen: 32}
	cases := []struct {
		name string
		req  ldp.SetupRequest
	}{
		{"empty id", ldp.SetupRequest{FEC: dst, Path: []string{"a", "b"}}},
		{"short path", ldp.SetupRequest{ID: "x", FEC: dst, Path: []string{"a"}}},
		{"wrong head", ldp.SetupRequest{ID: "x", FEC: dst, Path: []string{"b", "d"}}},
		{"unknown node", ldp.SetupRequest{ID: "x", FEC: dst, Path: []string{"a", "nope"}}},
		{"php too short", ldp.SetupRequest{ID: "x", FEC: dst, Path: []string{"a", "b"}, PHP: true}},
	}
	for _, c := range cases {
		if err := speakers["a"].Provision(c.req, nil); err == nil {
			t.Errorf("%s: provision accepted", c.name)
		}
	}
}

// TestSessionsReport checks the Sessions dump tracks convergence.
func TestSessionsReport(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(1))
	if err != nil {
		t.Fatal(err)
	}
	before := speakers["a"].Sessions()
	if len(before) != 2 {
		t.Fatalf("a has %d sessions, want 2", len(before))
	}
	for _, s := range before {
		if s.Up {
			t.Errorf("session to %s up before any hello", s.Peer)
		}
	}
	net.Sim.RunUntil(0.5)
	for _, s := range speakers["a"].Sessions() {
		if !s.Up {
			t.Errorf("session to %s is %s, want operational", s.Peer, s.State)
		}
	}
}

// TestPathCSPF checks the management surface's path computation honours
// metrics and rejects unknown egresses.
func TestPathCSPF(t *testing.T) {
	net := diamond(t)
	speakers, err := Deploy(net, WithUntil(1))
	if err != nil {
		t.Fatal(err)
	}
	p, err := speakers["a"].Path("d", 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(p, ",") != "a,b,d" {
		t.Errorf("CSPF path = %v, want the cheap a,b,d", p)
	}
	if _, err := speakers["a"].Path("nope", 0); err == nil {
		t.Error("Path to unknown node succeeded")
	}
}
