package lsm

import (
	"fmt"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/telemetry"
)

// Behavioral is the functional reference model of the label stack
// modifier: the same operations and discard rules as the cycle-accurate
// HW model, without the clock. It is the oracle the HW is property-tested
// against, and the data plane the network simulator runs (using the cost
// model for timing).
type Behavioral struct {
	ib    infobase.Store
	stack *label.Stack
	rtype RouterType

	drops     *telemetry.DropCounters
	trace     *telemetry.Ring
	traceNode string
}

// NewBehavioral returns a modifier with an empty stack and the paper's
// linear-search information base.
func NewBehavioral(rtype RouterType) *Behavioral {
	return NewBehavioralWithBase(rtype, infobase.New())
}

// NewBehavioralWithBase returns a modifier over the given information
// base — the hook for running the LSM against an indexed store or a
// non-default geometry. Note the modifier's SearchPos cost accounting
// reproduces the linear scan regardless of the store's internal
// structure: the cycle model prices the paper's hardware, not the Go
// lookup.
func NewBehavioralWithBase(rtype RouterType, ib infobase.Store) *Behavioral {
	return &Behavioral{
		ib:    ib,
		stack: &label.Stack{},
		rtype: rtype,
	}
}

// InfoBase exposes the modifier's information base so routing software
// ("routing functionality" in the paper's architecture) can populate it.
func (m *Behavioral) InfoBase() infobase.Store { return m.ib }

// Stack exposes the current label stack.
func (m *Behavioral) Stack() *label.Stack { return m.stack }

// RouterType returns the configured router type.
func (m *Behavioral) RouterType() RouterType { return m.rtype }

// SetTrace attaches a label-operation trace ring: every Update records
// the applied operation (or the discard, with its mapped telemetry
// reason) under the given node name. A nil ring detaches.
func (m *Behavioral) SetTrace(r *telemetry.Ring, node string) {
	m.trace = r
	m.traceNode = node
}

// SetTelemetry attaches the unified sink (the plane.Plane hook): drop
// counters receive one count per discard, the trace ring one event per
// update, both under the sink's node name.
func (m *Behavioral) SetTelemetry(s telemetry.Sink) {
	m.drops = s.Drops
	m.trace = s.Trace
	m.traceNode = s.Node
}

// Reset clears the label stack (the information base is preserved, as in
// the hardware where reset clears the data path registers but routing
// software owns table contents; use InfoBase().Clear() for a full wipe).
func (m *Behavioral) Reset() { m.stack.Reset() }

// UserPush pushes e directly onto the stack ("push from external user").
func (m *Behavioral) UserPush(e label.Entry) error { return m.stack.Push(e) }

// UserPop pops the top entry directly ("pop from external user").
func (m *Behavioral) UserPop() (label.Entry, error) { return m.stack.Pop() }

// WritePair stores a pair at the given level of the information base.
func (m *Behavioral) WritePair(lv infobase.Level, p infobase.Pair) error {
	return m.ib.Write(lv, p)
}

// Lookup searches the information base directly (the figures' "lookup"
// command). It returns the found label/operation, the 1-based position of
// the match (or the scanned count on a miss) and whether it matched.
func (m *Behavioral) Lookup(lv infobase.Level, key infobase.Key) (label.Label, label.Op, int, bool) {
	lbl, op, found := m.ib.Lookup(lv, key)
	pos := m.searchPos(lv, key, found)
	return lbl, op, pos, found
}

// ReadPair reads the stored pair at address i of level lv (the
// management read-out path).
func (m *Behavioral) ReadPair(lv infobase.Level, i int) (infobase.Pair, error) {
	entries := m.ib.Entries(lv)
	if i < 0 || i >= len(entries) {
		return infobase.Pair{}, fmt.Errorf("lsm: no pair at level %d address %d", lv, i)
	}
	return entries[i], nil
}

// searchPos reproduces the linear search cost: the 1-based index of the
// first match, or the full level count for a miss.
func (m *Behavioral) searchPos(lv infobase.Level, key infobase.Key, found bool) int {
	if !found {
		return m.ib.Count(lv)
	}
	for i, p := range m.ib.Entries(lv) {
		if p.Index == key {
			return i + 1
		}
	}
	return m.ib.Count(lv)
}

// Update performs the full packet-driven label stack update, the
// operation the label stack interface state machine of the paper's
// Figure 9 implements:
//
//  1. Search the information base at the level selected by the current
//     stack depth, keyed by the packet identifier (empty stack) or the
//     top label. No match: discard.
//  2. Remove the top entry and decrement the TTL (for an empty stack the
//     TTL comes from the control path instead). Expired TTL: discard.
//  3. Verify the stored operation is consistent with the stack state;
//     inconsistent: discard.
//  4. Apply it: pop rewrites the new top's TTL; swap pushes the new
//     label with the old entry's CoS; push re-pushes the old entry and
//     then the new label on top.
//
// Discarding resets the label stack, which is how the hardware marks the
// packet as dropped.
func (m *Behavioral) Update(req UpdateRequest) UpdateResult {
	depth := m.stack.Depth()
	lv := infobase.LevelForDepth(depth)
	key := infobase.Key(req.PacketID)
	if depth > 0 {
		top, _ := m.stack.Top()
		key = infobase.Key(top.Label)
	}

	newLbl, op, found := m.ib.Lookup(lv, key)
	res := UpdateResult{Op: op, NewLabel: newLbl, SearchPos: m.searchPos(lv, key, found)}
	if !found {
		res.Discard = DiscardNotFound
		m.stack.Reset()
		m.traceDiscard(lv, uint32(key), res.Discard)
		return res
	}

	// Remove-top / update-TTL phase.
	hadTop := depth > 0
	var old label.Entry
	ttl := req.TTLIn
	cos := req.CoSIn
	if hadTop {
		old, _ = m.stack.Pop()
		ttl = old.TTL
		cos = old.CoS
	}
	if ttl > 0 {
		ttl--
	}

	// Verify phase.
	switch {
	case ttl == 0:
		res.Discard = DiscardTTLExpired
	case op == label.OpNone:
		res.Discard = DiscardInconsistent
	case !hadTop && m.rtype == LSR:
		// A core LSR only handles labelled packets; an empty stack means
		// the packet should never have reached it.
		res.Discard = DiscardInconsistent
	case !hadTop && op != label.OpPush:
		// Only a push makes sense on an empty stack (LER ingress).
		res.Discard = DiscardInconsistent
	case op == label.OpPush && m.stack.Depth()+pushGrowth(hadTop) > label.MaxDepth:
		res.Discard = DiscardInconsistent
	}
	if res.Discarded() {
		m.stack.Reset()
		m.traceDiscard(lv, uint32(key), res.Discard)
		return res
	}

	// Apply phase. Push errors are impossible after verification, but a
	// failure here would mean the verifier and the stack disagree, so
	// surface it loudly rather than corrupt the packet.
	switch op {
	case label.OpPop:
		if !m.stack.Empty() {
			mustOK(m.stack.SetTopTTL(ttl))
		}
	case label.OpSwap:
		mustOK(m.stack.Push(label.Entry{Label: newLbl, CoS: cos, TTL: ttl}))
	case label.OpPush:
		if hadTop {
			old.TTL = ttl
			mustOK(m.stack.Push(old))
		}
		mustOK(m.stack.Push(label.Entry{Label: newLbl, CoS: cos, TTL: ttl}))
	}
	if m.trace != nil {
		// telemetry.TraceOp values mirror label.Op numerically.
		m.trace.RecordOp(m.traceNode, telemetry.TraceOp(op), uint8(lv), uint32(newLbl))
	}
	return res
}

// traceDiscard records a discard in the attached drop counters and
// trace ring, mapping the LSM reason into the telemetry taxonomy.
func (m *Behavioral) traceDiscard(lv infobase.Level, key uint32, d DiscardReason) {
	if m.trace == nil && m.drops == nil {
		return
	}
	reason, ok := d.Telemetry()
	if !ok {
		return
	}
	if m.drops != nil {
		m.drops.Inc(reason)
	}
	if m.trace != nil {
		m.trace.RecordDiscard(m.traceNode, uint8(lv), key, reason)
	}
}

// pushGrowth is how many entries a push operation adds back onto the
// stack after the top was removed: the old entry plus the new one, or
// just the new one at an empty-stack ingress.
func pushGrowth(hadTop bool) int {
	if hadTop {
		return 2
	}
	return 1
}

func mustOK(err error) {
	if err != nil {
		panic("lsm: stack operation failed after verification: " + err.Error())
	}
}
