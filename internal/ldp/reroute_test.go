package ldp

import (
	"errors"
	"testing"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/te"
)

// diamondNet builds a-b-d / a-c-d with forwarders everywhere.
func diamondNet(t *testing.T) (*Manager, map[string]*swmpls.Forwarder) {
	t.Helper()
	topo := te.NewTopology()
	for _, n := range []string{"a", "b", "c", "d"} {
		topo.AddNode(n)
	}
	for _, pair := range [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}} {
		if err := topo.AddDuplex(pair[0], pair[1], te.LinkAttrs{CapacityBPS: 10e6, Metric: 1}); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager(topo)
	fwds := make(map[string]*swmpls.Forwarder)
	for _, n := range []string{"a", "b", "c", "d"} {
		f := swmpls.New()
		fwds[n] = f
		if err := m.Register(n, f); err != nil {
			t.Fatal(err)
		}
	}
	return m, fwds
}

func TestRerouteMovesTraffic(t *testing.T) {
	m, fwds := diamondNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"}, Bandwidth: 2e6,
	}); err != nil {
		t.Fatal(err)
	}
	// Traffic follows a-b-d.
	last, res, visited := walk(t, fwds, "a", packet.New(1, dst, 64, nil))
	if res.Action != swmpls.Deliver || last != "d" || visited[1] != "b" {
		t.Fatalf("pre-reroute: %v via %v", res, visited)
	}

	if err := m.Reroute("l", []string{"a", "c", "d"}); err != nil {
		t.Fatal(err)
	}

	// Traffic now follows a-c-d end to end.
	last, res, visited = walk(t, fwds, "a", packet.New(1, dst, 64, nil))
	if res.Action != swmpls.Deliver || last != "d" {
		t.Fatalf("post-reroute: %v via %v", res, visited)
	}
	if visited[1] != "c" {
		t.Errorf("post-reroute path %v, want via c", visited)
	}

	// The old path's state is gone: b has no label bindings, and the
	// old reservation on a-b is released while a-c holds the new one.
	if fwds["b"].ILMSize() != 0 {
		t.Errorf("router b still holds %d ILM entries", fwds["b"].ILMSize())
	}
	ab, _ := m.topo.Link("a", "b")
	ac, _ := m.topo.Link("a", "c")
	if ab.ReservedBPS != 0 || ac.ReservedBPS != 2e6 {
		t.Errorf("reservations: a-b=%.0f a-c=%.0f", ab.ReservedBPS, ac.ReservedBPS)
	}
	lsp, ok := m.LSP("l")
	if !ok || lsp.Path[1] != "c" {
		t.Errorf("registry path = %v", lsp.Path)
	}
}

func TestRerouteFailureLeavesOldPathIntact(t *testing.T) {
	m, fwds := diamondNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"}, Bandwidth: 2e6,
	}); err != nil {
		t.Fatal(err)
	}
	// Saturate a-c so the reroute cannot reserve.
	if err := m.topo.Reserve([]string{"a", "c"}, 10e6); err != nil {
		t.Fatal(err)
	}
	err := m.Reroute("l", []string{"a", "c", "d"})
	if !errors.Is(err, te.ErrBandwidth) {
		t.Fatalf("err = %v, want bandwidth failure", err)
	}
	// Old path still forwards.
	last, res, _ := walk(t, fwds, "a", packet.New(1, dst, 64, nil))
	if res.Action != swmpls.Deliver || last != "d" {
		t.Fatalf("old path broken after failed reroute: %v at %s", res, last)
	}
	if _, ok := m.LSP("l"); !ok {
		t.Error("LSP vanished from the registry")
	}
}

func TestRerouteUnknownAndInUse(t *testing.T) {
	m, _ := diamondNet(t)
	if err := m.Reroute("ghost", []string{"a", "b"}); !errors.Is(err, ErrUnknownLSP) {
		t.Errorf("reroute ghost: %v", err)
	}
	if _, err := m.SetupTunnel("tun", []string{"a", "b", "d"}, 0); err != nil {
		t.Fatal(err)
	}
	// The rider enters the tunnel after one real hop (an ingress cannot
	// start inside a tunnel).
	if _, err := m.SetupLSP(SetupRequest{ID: "rider", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"c", "a", "d"}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Reroute("tun", []string{"a", "c", "d"}); !errors.Is(err, ErrTunnelInUse) {
		t.Errorf("reroute of in-use tunnel: %v", err)
	}
}

func TestRerouteUnusedTunnel(t *testing.T) {
	m, _ := diamondNet(t)
	if _, err := m.SetupTunnel("tun", []string{"a", "b", "d"}, 1e6); err != nil {
		t.Fatal(err)
	}
	if err := m.Reroute("tun", []string{"a", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	lsp, ok := m.LSP("tun")
	if !ok || !lsp.Tunnel || lsp.Path[1] != "c" {
		t.Errorf("rerouted tunnel = %+v", lsp)
	}
	ab, _ := m.topo.Link("a", "b")
	if ab.ReservedBPS != 0 {
		t.Errorf("old tunnel reservation leaked: %v", ab.ReservedBPS)
	}
}

// TestRerouteWithCSPF ties the pieces together: CSPF computes a repair
// path around an excluded node, Reroute installs it.
func TestRerouteWithCSPF(t *testing.T) {
	m, fwds := diamondNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
	}); err != nil {
		t.Fatal(err)
	}
	// Node b fails: compute a path avoiding it and reroute.
	repair, err := m.topo.CSPF(te.PathRequest{From: "a", To: "d", ExcludeNodes: map[string]bool{"b": true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Reroute("l", repair); err != nil {
		t.Fatal(err)
	}
	_, res, visited := walk(t, fwds, "a", packet.New(1, dst, 64, nil))
	if res.Action != swmpls.Deliver {
		t.Fatalf("repair path broken: %v via %v", res, visited)
	}
	for _, hop := range visited {
		if hop == "b" {
			t.Errorf("repair path still crosses the failed node: %v", visited)
		}
	}
}

// TestRerouteDeferredHoldsOldPath checks the make-before-break contract
// of the deferred break: until the caller breaks, both paths' label
// state and reservations are held (so in-flight packets drain), and the
// break itself is idempotent.
func TestRerouteDeferredHoldsOldPath(t *testing.T) {
	m, fwds := diamondNet(t)
	if _, err := m.SetupLSP(SetupRequest{
		ID: "l", FEC: FEC{Dst: dst, PrefixLen: 32},
		Path: []string{"a", "b", "d"}, Bandwidth: 2e6,
	}); err != nil {
		t.Fatal(err)
	}
	// An in-flight packet: already pushed at the ingress, about to
	// arrive at b with the old path's label.
	inflight := packet.New(1, dst, 64, nil)
	if res := fwds["a"].Forward(inflight); res.NextHop != "b" {
		t.Fatalf("ingress sent to %q, want b", res.NextHop)
	}

	brk, err := m.RerouteDeferred("l", []string{"a", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}

	// New traffic takes the new path immediately...
	_, res, visited := walk(t, fwds, "a", packet.New(1, dst, 64, nil))
	if res.Action != swmpls.Deliver || visited[1] != "c" {
		t.Fatalf("fresh packet went %v (%v), want via c", visited, res)
	}
	// ...while the in-flight packet still completes on the old path.
	last, res, visited := walk(t, fwds, "b", inflight)
	if res.Action != swmpls.Deliver || last != "d" {
		t.Fatalf("in-flight packet died before the break: %v at %s via %v", res, last, visited)
	}
	// Both paths' reservations are held during the transition.
	for _, link := range [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}} {
		a, _ := m.topo.Link(link[0], link[1])
		if a.ReservedBPS != 2e6 {
			t.Errorf("link %v reserved %.0f during transition, want 2e6", link, a.ReservedBPS)
		}
	}

	brk()
	brk() // idempotent

	// Old path state is gone: its reservation is released and a packet
	// stranded on it now hits the paper's lookup-miss discard.
	for _, link := range [][2]string{{"a", "b"}, {"b", "d"}} {
		a, _ := m.topo.Link(link[0], link[1])
		if a.ReservedBPS != 0 {
			t.Errorf("old link %v still reserves %.0f after break", link, a.ReservedBPS)
		}
	}
	late := packet.New(1, dst, 64, nil)
	if res := fwds["a"].Forward(late); res.NextHop != "c" {
		t.Fatalf("ingress sent to %q after break, want c", res.NextHop)
	}
}
