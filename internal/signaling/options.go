package signaling

import (
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/telemetry"
)

// RestartPolicy paces session re-establishment after a peer is lost.
// Do runs op immediately and again with (typically exponential) backoff
// until op returns nil or the policy gives up, then calls onDone with
// the final error. resilience.Retryer satisfies it structurally; the
// speaker depends on the shape only, keeping the package dependency
// pointing resilience -> signaling as everywhere else.
type RestartPolicy interface {
	Do(name string, op func() error, onDone func(error))
}

// LabelGuard observes this node's label advertisements so an ingress
// admission filter can pin which labels each neighbour is allowed to
// send: Advertise(peer, l) after telling peer to send label l here,
// Withdraw when that binding is torn down. guard.Guard satisfies it.
type LabelGuard interface {
	Advertise(peer string, l label.Label)
	Withdraw(peer string, l label.Label)
}

type config struct {
	timers       Timers
	until        float64
	drainDelay   float64
	retryBackoff float64
	retryMax     int
	setupTimeout float64
	avoidHold    float64
	maintIvl     float64
	adaptLoad    float64
	restart      RestartPolicy
	guard        LabelGuard
	events       *telemetry.EventCounters
}

func defaults() config {
	return config{
		timers:       Timers{}.withDefaults(),
		drainDelay:   0.02,
		retryBackoff: 0.05,
		retryMax:     5,
		setupTimeout: 0.25,
		avoidHold:    2.0,
	}
}

// Option configures a Speaker.
type Option func(*config)

// WithTimers sets the session FSM timers (zero fields take defaults).
func WithTimers(t Timers) Option {
	return func(c *config) { c.timers = t.withDefaults() }
}

// WithUntil stops session ticking at the given clock time so a bounded
// scenario's event queue can drain. 0 ticks forever (stop with Stop).
func WithUntil(t float64) Option {
	return func(c *config) { c.until = t }
}

// WithEvents attaches an event counter sink for session transitions,
// label message receipts, protection switches and retries.
func WithEvents(e *telemetry.EventCounters) Option {
	return func(c *config) { c.events = e }
}

// WithDrainDelay sets the make-before-break drain: how long a
// superseded path generation keeps forwarding before its release is
// sent. <=0 keeps the default 20ms.
func WithDrainDelay(d float64) Option {
	return func(c *config) {
		if d > 0 {
			c.drainDelay = d
		}
	}
}

// WithRetry sets the retry budget and backoff base for establishment
// and reroute attempts.
func WithRetry(max int, backoff float64) Option {
	return func(c *config) {
		if max > 0 {
			c.retryMax = max
		}
		if backoff > 0 {
			c.retryBackoff = backoff
		}
	}
}

// WithSetupTimeout sets how long the ingress waits for a mapping before
// retransmitting its request.
func WithSetupTimeout(d float64) Option {
	return func(c *config) {
		if d > 0 {
			c.setupTimeout = d
		}
	}
}

// WithRestartPolicy routes session re-establishment through p: when a
// session that was operational goes down, the periodic hello is muted
// and p paces rediscovery probes instead, so a dead peer costs a
// decaying trickle rather than a tight hello loop. If p gives up, the
// legacy hello cadence resumes. Without a policy, sessions redial
// immediately every hello tick (the pre-hardening behaviour).
func WithRestartPolicy(p RestartPolicy) Option {
	return func(c *config) { c.restart = p }
}

// WithGuard attaches a label-advertisement observer (the ingress
// admission guard) so spoof filtering tracks the live label state.
func WithGuard(g LabelGuard) Option {
	return func(c *config) { c.guard = g }
}

// WithMaintenance enables a periodic background sweep every ivl
// seconds: failed ingress LSPs are re-signalled (so a node that ran
// out of retry budget during a partition recovers once the topology
// heals) and adaptive keepalive recomputes. 0 (the default) disables
// the sweep — pure-simulation scenarios need the event queue to drain.
func WithMaintenance(ivl float64) Option {
	return func(c *config) {
		if ivl > 0 {
			c.maintIvl = ivl
		}
	}
}

// WithAdaptiveKeepalive stretches operational keepalive intervals when
// the speaker's receive rate exceeds loadPPS messages/second: at 2x
// the threshold keepalives are paced 2x apart, clamped per session so
// the stretched interval never exceeds half the hold timer. 0 (the
// default) disables adaptation. Requires WithMaintenance (the sweep is
// where the rate is sampled).
func WithAdaptiveKeepalive(loadPPS float64) Option {
	return func(c *config) {
		if loadPPS > 0 {
			c.adaptLoad = loadPPS
		}
	}
}

// WithAvoidHold sets how long (seconds) a reroute remembers links that
// errors and withdraws named as faulty: remembered links stay excluded
// from CSPF across consecutive reroutes of the same LSP, so an ingress
// bouncing between two broken paths accumulates the evidence instead
// of oscillating. <=0 keeps the default 2s.
func WithAvoidHold(d float64) Option {
	return func(c *config) {
		if d > 0 {
			c.avoidHold = d
		}
	}
}
