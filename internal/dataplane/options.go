package dataplane

import (
	"time"

	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// config parameterises an Engine. It follows the repository-wide
// functional-option convention (see DESIGN.md): one unexported config
// struct, WithX constructors, and a variadic New applying them over
// defaults.
type config struct {
	workers      int
	queueCap     int
	batch        int
	policy       DropPolicy
	egress       Egress
	egressN      int
	egressIvl    time.Duration
	node         string
	trace        *telemetry.Ring
	newTable     func() *swmpls.Forwarder
	disableCache bool
}

// Option configures an Engine built by New.
type Option func(*config)

// WithWorkers sets the number of shard workers. <=0 selects
// runtime.NumCPU().
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithQueueCap bounds each shard's ingress queue in packets. <=0 means
// 1024. Under CoSAware the capacity is split evenly across the eight
// classes.
func WithQueueCap(n int) Option {
	return func(c *config) { c.queueCap = n }
}

// WithBatch sets the maximum number of packets a worker drains per
// queue visit. <=0 means 64. Larger batches amortise synchronisation;
// smaller ones bound added latency.
func WithBatch(n int) Option {
	return func(c *config) { c.batch = n }
}

// WithPolicy selects the queue admission policy (default TailDrop).
func WithPolicy(p DropPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithEgress installs the batch egress sink receiving every processed
// packet (see the Egress contract). Nil discards packets after
// accounting. SetEgress can attach or replace the sink later — the
// path a router takes when the engine is built before its links exist.
func WithEgress(sink Egress) Option {
	return func(c *config) { c.egress = sink }
}

// WithEgressFlush tunes the egress staging rings: a ring flushes to
// the sink when it holds n packets (<=0 means the worker batch size),
// or after ivl of queue idleness (<=0 means 200µs) so a trickle never
// strands packets in a ring.
func WithEgressFlush(n int, ivl time.Duration) Option {
	return func(c *config) { c.egressN = n; c.egressIvl = ivl }
}

// WithNode names this engine in telemetry (trace events, metric
// labels). Empty means "dataplane".
func WithNode(name string) Option {
	return func(c *config) { c.node = name }
}

// WithTrace attaches a trace ring receiving one event per processed
// packet: the applied label operation, or the discard with its mapped
// reason. Workers write to it concurrently; the ring is safe for that.
// (SetTelemetry can attach or retarget it later.)
func WithTrace(r *telemetry.Ring) Option {
	return func(c *config) { c.trace = r }
}

// WithNewTable installs the builder of the engine's root forwarding
// table — the hook that selects the ILM lookup backend
// (swmpls.New(swmpls.WithILM(...))). Clone keeps the backend, so every
// published snapshot inherits it. Nil means swmpls.New().
func WithNewTable(fn func() *swmpls.Forwarder) Option {
	return func(c *config) { c.newTable = fn }
}

// WithFlowCacheDisabled turns off the per-worker flow cache. The cache
// memoises resolved NHLFEs per flow identity against one table
// snapshot and is invalidated on every publish, so it is semantically
// invisible; disable it only to measure the uncached path.
func WithFlowCacheDisabled() Option {
	return func(c *config) { c.disableCache = true }
}
