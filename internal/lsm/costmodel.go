package lsm

import "embeddedmpls/internal/label"

// Cycle cost model — the latencies of Table 6 of the paper, plus the
// latencies it leaves implicit. Every constant and formula here is
// verified against the cycle-accurate HW model by exact-equality tests
// (timing_test.go), so the behavioral model and the network simulator can
// account time without stepping the RTL.
const (
	// CyclesReset: "Reset — 3".
	CyclesReset = 3
	// CyclesUserPush: "push from the user — 3".
	CyclesUserPush = 3
	// CyclesUserPop: "pop from the user — 3".
	CyclesUserPop = 3
	// CyclesWritePair: "Write label pair — 3".
	CyclesWritePair = 3

	// searchPerEntry and searchOverhead give "Search information base —
	// 3n+5": three cycles per scanned entry (read, wait, compare) plus
	// five of command dispatch and completion signalling.
	searchPerEntry = 3
	searchOverhead = 5

	// CyclesSwapFromIB: "swap from the information base — 6": the cycles
	// from the end of the search component to operation completion
	// (remove top, update TTL, verify, load new entry, push, done).
	CyclesSwapFromIB = 6
	// CyclesPopFromIB is the same tail for a pop (no entry to assemble
	// and push, but the new top's TTL is rewritten). Not listed in
	// Table 6; measured from the HW model.
	CyclesPopFromIB = 5
	// CyclesPushFromIB is the tail for a push: the old top is pushed
	// back before the new entry. Not listed in Table 6; measured.
	CyclesPushFromIB = 7
	// CyclesDiscardNotFound is the tail after an unsuccessful search of
	// an update (discard, done).
	CyclesDiscardNotFound = 1
	// CyclesDiscardVerify is the tail when verification rejects the
	// packet (TTL expired or inconsistent operation) after a hit.
	CyclesDiscardVerify = 5
)

// SearchCycles returns the cycle cost of searching an information base
// level, where pos is the 1-based position of the matching pair, or the
// total number of stored pairs for a miss: 3*pos + 5. The paper quotes
// the worst case with pos = n = total entries.
func SearchCycles(pos int) int {
	if pos < 0 {
		pos = 0
	}
	return searchPerEntry*pos + searchOverhead
}

// CyclesReadPair is the constant cost of reading one information base
// entry by address (dispatch, address, memory wait, latch, done).
const CyclesReadPair = 5

// CyclesSearchCAM is the constant search cost of the associative (CAM)
// information base ablation: match (1) + read (1) + resolve (1) plus the
// same four dispatch/completion cycles as the linear design. Pinned by
// exact-equality tests against the CAM-configured RTL model.
const CyclesSearchCAM = 7

// SearchCyclesFor returns the search cost under the given search kind.
func SearchCyclesFor(kind SearchKind, pos int) int {
	if kind == SearchCAM {
		return CyclesSearchCAM
	}
	return SearchCycles(pos)
}

// UpdateCycles returns the total cycle cost of an update operation given
// its result: the search component plus the operation tail.
func UpdateCycles(r UpdateResult) int {
	s := SearchCycles(r.SearchPos)
	switch r.Discard {
	case DiscardNotFound:
		return s + CyclesDiscardNotFound
	case DiscardTTLExpired, DiscardInconsistent:
		return s + CyclesDiscardVerify
	}
	switch r.Op {
	case label.OpPop:
		return s + CyclesPopFromIB
	case label.OpSwap:
		return s + CyclesSwapFromIB
	case label.OpPush:
		return s + CyclesPushFromIB
	default:
		return s
	}
}

// UpdateCyclesFor is UpdateCycles under the given search kind: the
// operation tail is unchanged, only the search component differs.
func UpdateCyclesFor(kind SearchKind, r UpdateResult) int {
	return UpdateCycles(r) - SearchCycles(r.SearchPos) + SearchCyclesFor(kind, r.SearchPos)
}

// WorstCaseScenarioCycles computes the paper's headline worst case: reset
// the architecture, push three stack entries, fill an entire level with
// entries pairs, and perform a swap whose search scans the full level.
// With entries = 1024 this is 6167 cycles.
func WorstCaseScenarioCycles(entries int) int {
	return CyclesReset +
		3*CyclesUserPush +
		entries*CyclesWritePair +
		SearchCycles(entries) +
		CyclesSwapFromIB
}

// Clock converts cycle counts to wall time at a fixed frequency, modelling
// the FPGA clock (the paper assumes an Altera Stratix EP1S40F780C5 at
// 50 MHz).
type Clock struct {
	// HZ is the clock frequency in cycles per second.
	HZ uint64
}

// DefaultClock is the paper's 50 MHz device clock.
var DefaultClock = Clock{HZ: 50_000_000}

// Seconds returns the wall-clock duration of n cycles in seconds.
func (c Clock) Seconds(n int) float64 { return float64(n) / float64(c.HZ) }

// Nanos returns the wall-clock duration of n cycles in nanoseconds.
func (c Clock) Nanos(n int) float64 { return c.Seconds(n) * 1e9 }
