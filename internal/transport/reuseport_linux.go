//go:build linux

package transport

import "syscall"

// soReusePort is SO_REUSEPORT, absent from the frozen syscall package.
// With it set on every socket of a shard group, the kernel hashes each
// arriving 4-tuple to one socket — a per-shard receive queue with no
// user-space demultiplexing.
const soReusePort = 0xf

// reusePortControl is a net.ListenConfig Control hook that marks the
// socket SO_REUSEPORT before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
