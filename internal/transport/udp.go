package transport

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

// UDPLink is a unidirectional transport link toward one neighbour: it
// encodes packets with the wire codec and writes them to a connected
// UDP socket. It implements netsim.Wire, so a router attaches it
// exactly like a simulated link — SetDown, fault hooks, keepalive
// probes and failover all behave identically, except that loss and
// delay now also come from a real network path.
//
// SendBatch is the primary egress path; Send is a batch of one.
// Both feed one coalescer: with WithCoalesce, packets pack into
// coalesced frame datagrams (many packets per datagram, sealed on
// count or after the flush interval — a partial frame stays open
// across calls), and sealed frames move up to WithSysBatch datagrams
// per sendmmsg syscall where the platform has it. The whole path
// reuses link-owned buffers, so steady-state batched sends allocate
// nothing.
//
// Fault semantics mirror netsim.Link: the hook sees the packet when
// its transmission starts, a Drop verdict eats it, ExtraDelay defers
// the socket write. A fault that mutates the packet (the corruption
// window of package faults) is materialised as on-the-wire damage —
// the datagram's magic is smashed, so the receiver's decode fails and
// the loss surfaces as a wire-decode drop, which is what label
// corruption on a physical wire looks like from the far end.
type UDPLink struct {
	from, to string
	src      NodeID
	conn     *net.UDPConn
	rc       syscall.RawConn

	// mu guards fault and onDrop; Send, SetFault and SetOnDrop may run
	// on different goroutines (pump, fault injector, collector).
	mu     sync.Mutex
	fault  netsim.Fault
	onDrop func(p *packet.Packet, reason telemetry.Reason)

	now   func() float64
	start time.Time

	down   atomic.Bool
	closed atomic.Bool
	// inflight tracks deferred sends (delayed fault re-sends) so Close
	// can wait for buffers to drain back to the pool.
	inflight sync.WaitGroup
	closing  sync.Once

	coalesce int
	sysBatch int
	flushIvl time.Duration

	// smu guards the batching state below. Send and SendBatch share one
	// coalescer: both feed the open frame (frBuf/fr), sealed frames
	// become datagram views, and views drain through batched syscalls. A
	// partially filled frame stays open across calls and is flushed by
	// the timer, so single-packet Sends coalesce with batches.
	smu       sync.Mutex
	pendTimer *time.Timer

	frames   []*[]byte // per-view encode buffers, grown once, reused
	views    [][]byte
	viewPkts []int
	nview    int
	frBuf    *[]byte // dedicated buffer behind the open frame
	frOpen   bool
	fr       FrameEncoder
	frPkts   int
	one      [1]*packet.Packet // Send's batch-of-one scratch

	io     *mmsgIO
	sendFn func(fd uintptr) bool // stored once: no per-write closure alloc
	werrno syscall.Errno

	m    *Metrics
	drop func(telemetry.Reason)
}

// Dial opens a transport link from node `from` toward neighbour `to`
// at the remote UDP address. The link owns the socket; Close releases
// it.
func Dial(from, to, raddr string, opts ...Option) (*UDPLink, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	ra, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s->%s: %w", from, to, err)
	}
	conn, err := net.DialUDP("udp", nil, ra)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s->%s: %w", from, to, err)
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: dial %s->%s: %w", from, to, err)
	}
	l := &UDPLink{
		from:     from,
		to:       to,
		src:      cfg.src,
		conn:     conn,
		rc:       rc,
		now:      cfg.now,
		start:    time.Now(),
		coalesce: cfg.coalesce,
		sysBatch: cfg.sysBatch,
		flushIvl: cfg.flushInterval,
		views:    make([][]byte, cfg.sysBatch),
		viewPkts: make([]int, cfg.sysBatch),
		m:        cfg.metrics,
		drop:     cfg.drop,
	}
	if l.m == nil {
		l.m = &Metrics{}
	}
	if haveMmsg && l.sysBatch > 1 {
		l.io = newMmsgIO(l.sysBatch)
	}
	l.sendFn = l.sendStep
	l.pendTimer = time.AfterFunc(time.Hour, l.flushOpen)
	l.pendTimer.Stop()
	return l, nil
}

// From returns the sending node's name.
func (l *UDPLink) From() string { return l.from }

// To implements netsim.Wire.
func (l *UDPLink) To() string { return l.to }

// Metrics exposes the link's transport counters.
func (l *UDPLink) Metrics() *Metrics { return l.m }

// LocalAddr returns the socket's local address (useful in logs).
func (l *UDPLink) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// SetDown implements netsim.Wire: a down link discards everything
// handed to it.
func (l *UDPLink) SetDown(down bool) { l.down.Store(down) }

// Down implements netsim.Wire.
func (l *UDPLink) Down() bool { return l.down.Load() }

// SetFault implements netsim.Wire.
func (l *UDPLink) SetFault(f netsim.Fault) {
	l.mu.Lock()
	l.fault = f
	l.mu.Unlock()
}

// SetOnDrop implements netsim.Wire.
func (l *UDPLink) SetOnDrop(fn func(p *packet.Packet, reason telemetry.Reason)) {
	l.mu.Lock()
	l.onDrop = fn
	l.mu.Unlock()
}

// clock returns the fault-window time in seconds: the injected clock
// if one was configured, wall time since the link was created
// otherwise.
func (l *UDPLink) clock() float64 {
	if l.now != nil {
		return l.now()
	}
	return time.Since(l.start).Seconds()
}

// lost accounts one packet that never reached the socket.
func (l *UDPLink) lost(p *packet.Packet, reason telemetry.Reason) {
	l.m.TxLost.Add(1)
	if l.drop != nil {
		l.drop(reason)
	}
	l.mu.Lock()
	fn := l.onDrop
	l.mu.Unlock()
	if fn != nil {
		fn(p, reason)
	}
}

// encodeOne encodes p into a pooled buffer, applying the fault hook's
// verdict. It returns a nil buffer when the packet was consumed (drop
// verdict, encode failure — both accounted) and the extra delay a
// delay verdict imposed.
func (l *UDPLink) encodeOne(p *packet.Packet, fault netsim.Fault) (*[]byte, float64) {
	buf := getBuf()
	enc, err := AppendPacket((*buf)[:0], p, l.src)
	if err != nil {
		l.m.EncodeErrors.Add(1)
		l.lost(p, telemetry.ReasonInconsistentOp)
		putBuf(buf)
		return nil, 0
	}
	*buf = enc

	var extra float64
	if fault != nil {
		v := fault.Transmit(p, l.clock())
		if v.Drop {
			l.lost(p, telemetry.ReasonNoRoute)
			putBuf(buf)
			return nil, 0
		}
		extra = v.ExtraDelay
		// Re-encode after the hook: a difference means the fault
		// corrupted the packet, which on a real wire is damage to the
		// bytes in flight. Smash the magic so the far end's decode
		// fails instead of silently forwarding a half-believable frame.
		buf2 := getBuf()
		enc2, err2 := AppendPacket((*buf2)[:0], p, l.src)
		if err2 != nil {
			// Corrupted beyond encodability: the wire would have
			// carried trash; model it as loss on this side.
			l.m.EncodeErrors.Add(1)
			l.lost(p, telemetry.ReasonNoRoute)
			putBuf(buf)
			putBuf(buf2)
			return nil, 0
		}
		*buf2 = enc2
		if !bytes.Equal(*buf, *buf2) {
			(*buf2)[0] ^= 0xff
		}
		putBuf(buf)
		buf = buf2
	}
	return buf, extra
}

// Send implements netsim.Wire: the one-packet helper. It is a
// batch-of-one through the same coalescer as SendBatch, so loss is
// counted, never reported — exactly the simulated link's contract —
// and with coalescing enabled the packet joins the open frame and
// reaches the socket when the frame fills or the flush interval
// expires. Send is safe to call concurrently with Close.
func (l *UDPLink) Send(p *packet.Packet) {
	if l.closed.Load() || l.down.Load() {
		l.lost(p, telemetry.ReasonNoRoute)
		return
	}
	l.mu.Lock()
	fault := l.fault
	l.mu.Unlock()
	l.smu.Lock()
	l.one[0] = p
	l.sendBatchLocked(l.one[:], fault)
	l.one[0] = nil
	l.smu.Unlock()
}

// SendBatch implements netsim.Wire: it moves a whole slice of packets
// through the link in one call. Packets are packed into coalesced
// frames (per WithCoalesce) and full frames written with batched
// syscalls (up to WithSysBatch datagrams per sendmmsg). A partially
// filled tail frame stays open for the next Send/SendBatch and is
// otherwise flushed when the flush interval expires, so sub-batch
// callers still coalesce across calls. Per-packet down/closed/fault
// semantics match Send, except the fault hook is sampled once per
// call. The steady-state path allocates nothing: encode buffers,
// scatter/gather state and the syscall closure are all link-owned and
// reused.
func (l *UDPLink) SendBatch(ps []*packet.Packet) {
	l.mu.Lock()
	fault := l.fault
	l.mu.Unlock()
	l.smu.Lock()
	l.sendBatchLocked(ps, fault)
	l.smu.Unlock()
}

// sendBatchLocked is the single egress path: every packet — from Send
// or SendBatch — joins the open coalesced frame (or its own datagram
// view when coalescing is off), sealed frames become views, and views
// drain through writeViews. Callers hold smu.
func (l *UDPLink) sendBatchLocked(ps []*packet.Packet, fault netsim.Fault) {
	for _, p := range ps {
		if l.closed.Load() || l.down.Load() {
			l.lost(p, telemetry.ReasonNoRoute)
			continue
		}
		if fault == nil && l.coalesce > 1 {
			// Fast path: encode straight into the open frame.
			if !l.frOpen {
				l.openFrame()
			}
			if err := l.fr.Append(p, l.src); err != nil {
				l.m.EncodeErrors.Add(1)
				l.lost(p, telemetry.ReasonInconsistentOp)
				continue
			}
			l.frPkts++
			l.frameAppended()
			continue
		}
		buf, extra := l.encodeOne(p, fault)
		if buf == nil {
			continue
		}
		if extra > 0 {
			l.inflight.Add(1)
			time.AfterFunc(time.Duration(extra*float64(time.Second)), func() { l.write(buf) })
			continue
		}
		if l.coalesce > 1 {
			if !l.frOpen {
				l.openFrame()
			}
			if err := l.fr.AppendEncoded(*buf); err != nil {
				l.sealFrame()
				l.openFrame()
				if err := l.fr.AppendEncoded(*buf); err != nil {
					l.m.EncodeErrors.Add(1)
					putBuf(buf)
					continue
				}
			}
			putBuf(buf)
			l.frPkts++
			l.frameAppended()
			continue
		}
		// Single-datagram views: copy the encoding into the view buffer
		// so the pooled buf can be released immediately.
		vb := l.viewBuf()
		*vb = append((*vb)[:0], *buf...)
		putBuf(buf)
		l.pushView(*vb, 1)
	}
	// Sealed frames go to the socket now; a partially filled open frame
	// stays pending for the next call or the flush timer.
	l.writeViews()
}

// openFrame starts a coalesced frame in the link-owned frame buffer —
// deliberately not a view slot, so the frame can stay open across
// calls while sealed views drain underneath it. Callers hold smu.
func (l *UDPLink) openFrame() {
	if l.frBuf == nil {
		b := make([]byte, 0, MaxDatagram)
		l.frBuf = &b
	}
	l.fr = BeginFrame((*l.frBuf)[:0])
	l.frOpen = true
	l.frPkts = 0
}

// frameAppended runs the post-append triggers: seal when the frame is
// full, arm the flush timer when a fresh frame received its first
// packet (arming on the empty->nonempty transition bounds how long any
// packet waits, even under a steady trickle that never fills frames).
// Callers hold smu.
func (l *UDPLink) frameAppended() {
	if l.fr.Count() >= l.coalesce || l.fr.Size() >= maxFrameSize-MaxDatagram {
		l.sealFrame()
		return
	}
	if l.fr.Count() == 1 {
		l.pendTimer.Reset(l.flushIvl)
	}
}

// sealFrame finishes the open frame and registers it as a view,
// flushing the view batch to the socket when it reaches the syscall
// batch size. The finished frame keeps its backing buffer: the buffer
// swaps into the view slot and the slot's old buffer becomes the next
// frame's backing store, so no copy and no allocation. Callers hold
// smu.
func (l *UDPLink) sealFrame() {
	frame, err := l.fr.Finish()
	l.frOpen = false
	if err != nil {
		return
	}
	vb := l.viewBuf()
	*l.frBuf = frame
	l.frames[l.nview] = l.frBuf
	l.frBuf = vb
	l.pushView(frame, l.frPkts)
}

// viewBuf returns the encode buffer backing view slot nview, growing
// the scratch list on first use. Callers hold smu.
func (l *UDPLink) viewBuf() *[]byte {
	for len(l.frames) <= l.nview {
		b := make([]byte, 0, MaxDatagram)
		l.frames = append(l.frames, &b)
	}
	return l.frames[l.nview]
}

// pushView registers one encoded datagram carrying pkts packets.
// Callers hold smu.
func (l *UDPLink) pushView(view []byte, pkts int) {
	l.views[l.nview] = view
	l.viewPkts[l.nview] = pkts
	l.nview++
	if l.nview == l.sysBatch {
		l.writeViews()
	}
}

// sendStep is the raw-connection write callback: one sendmmsg over the
// unsent tail of the loaded batch. Stored once in sendFn so issuing it
// allocates nothing.
func (l *UDPLink) sendStep(fd uintptr) bool {
	l.m.TxSyscalls.Add(1)
	_, errno := l.io.sendStep(fd)
	if errno == syscall.EAGAIN {
		return false
	}
	l.werrno = errno
	return true
}

// writeViews writes the accumulated datagram views with as few
// syscalls as the platform allows and accounts the outcome. Callers
// hold smu.
func (l *UDPLink) writeViews() {
	if l.nview == 0 {
		return
	}
	views := l.views[:l.nview]
	pkts := l.viewPkts[:l.nview]
	l.nview = 0
	if l.io == nil {
		// No batched syscalls on this platform: one write per datagram.
		// A transient error on one datagram does not doom the batch.
		for i, v := range views {
			l.m.TxSyscalls.Add(1)
			n, err := l.conn.Write(v)
			if err != nil {
				l.m.TxErrors.Add(1)
				continue
			}
			l.m.TxDatagrams.Add(1)
			l.m.TxPackets.Add(uint64(pkts[i]))
			l.m.TxBytes.Add(uint64(n))
		}
		return
	}
	l.io.load(views)
	for l.io.done < l.io.n {
		l.werrno = 0
		err := l.rc.Write(l.sendFn)
		if err != nil || l.werrno != 0 {
			l.m.TxErrors.Add(uint64(l.io.n - l.io.done))
			break
		}
	}
	var sentPkts, sentBytes uint64
	for i := 0; i < l.io.done; i++ {
		sentPkts += uint64(pkts[i])
		sentBytes += uint64(len(views[i]))
	}
	l.m.TxDatagrams.Add(uint64(l.io.done))
	l.m.TxPackets.Add(sentPkts)
	l.m.TxBytes.Add(sentBytes)
}

// flushOpen is the flush timer's callback: seal and write whatever the
// coalescer holds so no packet waits longer than the flush interval.
func (l *UDPLink) flushOpen() {
	l.smu.Lock()
	if l.frOpen && l.fr.Count() > 0 {
		l.sealFrame()
	}
	l.writeViews()
	l.smu.Unlock()
}

// write pushes one encoded single-packet datagram to the socket and
// recycles the buffer — the deferred path for delayed fault re-sends,
// which travel as their own datagram when their timer fires.
func (l *UDPLink) write(buf *[]byte) {
	defer l.inflight.Done()
	defer putBuf(buf)
	if l.closed.Load() {
		l.m.TxLost.Add(1)
		return
	}
	n, err := l.conn.Write(*buf)
	if err != nil {
		l.m.TxErrors.Add(1)
		return
	}
	l.m.TxSyscalls.Add(1)
	l.m.TxDatagrams.Add(1)
	l.m.TxPackets.Add(1)
	l.m.TxBytes.Add(uint64(n))
}

// Close implements netsim.Wire: idempotent, safe against concurrent
// Send (packets racing a Close are counted as lost or as socket
// errors, like a link that went away mid-flight). A pending coalesced
// frame is flushed before the socket closes.
func (l *UDPLink) Close() error {
	var err error
	l.closing.Do(func() {
		l.closed.Store(true)
		l.smu.Lock()
		if l.frOpen && l.fr.Count() > 0 {
			l.sealFrame()
		}
		l.writeViews()
		l.pendTimer.Stop()
		l.smu.Unlock()
		err = l.conn.Close()
		l.inflight.Wait()
	})
	return err
}

var _ netsim.Wire = (*UDPLink)(nil)
