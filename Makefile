# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench reproduce race cover examples clean

all: build test

build:
	go build ./...

test:
	go vet ./...
	go test ./...

bench:
	go test -bench=. -benchmem ./...

reproduce:
	go run ./cmd/reproduce -out results

race:
	go test -race ./...

cover:
	go test -cover ./internal/...

examples:
	@for ex in quickstart figure1 tunnel voipqos hwsw signaling mmio; do \
		echo "== $$ex =="; go run ./examples/$$ex; echo; done

clean:
	rm -rf results
