package label

import (
	"errors"
	"fmt"
)

// MaxDepth is the deepest label stack the embedded architecture supports.
// The paper (after [5]) observes that practical MPLS networks rarely nest
// more than two or three LSP levels, and sizes its information base with
// three memory levels accordingly.
const MaxDepth = 3

// Stack is an MPLS label stack. The top of the stack is the entry that a
// router examines; on the wire the top entry appears first (closest to the
// layer-2 header). The zero value is an empty, usable stack.
//
// Stack enforces the RFC 3032 invariant that exactly the bottom entry has
// its S bit set: Push and Pop maintain the bits, so callers never set
// Entry.Bottom themselves (it is overwritten).
type Stack struct {
	// entries[0] is the bottom of the stack, entries[len-1] the top.
	entries []Entry
}

// Stack manipulation errors.
var (
	ErrStackEmpty = errors.New("label: stack is empty")
	ErrStackFull  = errors.New("label: stack exceeds max depth")
)

// NewStack builds a stack from bottom to top, normalising S bits.
func NewStack(bottomToTop ...Entry) (*Stack, error) {
	s := &Stack{}
	for _, e := range bottomToTop {
		if err := s.Push(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Depth returns the number of entries on the stack.
func (s *Stack) Depth() int { return len(s.entries) }

// Empty reports whether the stack has no entries.
func (s *Stack) Empty() bool { return len(s.entries) == 0 }

// Top returns the top entry. It fails on an empty stack.
func (s *Stack) Top() (Entry, error) {
	if s.Empty() {
		return Entry{}, ErrStackEmpty
	}
	return s.entries[len(s.entries)-1], nil
}

// Push adds e on top of the stack. The S bit of e is forced: set when the
// stack was empty, clear otherwise. Pushing beyond MaxDepth fails — the
// hardware data path has registers for only MaxDepth entries.
func (s *Stack) Push(e Entry) error {
	if len(s.entries) >= MaxDepth {
		return ErrStackFull
	}
	e.Bottom = len(s.entries) == 0
	s.entries = append(s.entries, e)
	return nil
}

// Pop removes and returns the top entry. The next entry, if any, keeps its
// S bit (it was already correct by construction).
func (s *Stack) Pop() (Entry, error) {
	if s.Empty() {
		return Entry{}, ErrStackEmpty
	}
	e := s.entries[len(s.entries)-1]
	s.entries = s.entries[:len(s.entries)-1]
	return e, nil
}

// Swap replaces the top entry's label with lbl, leaving CoS, S and TTL
// untouched. The TTL adjustment is the caller's job (the label stack
// modifier decrements it before swapping).
func (s *Stack) Swap(lbl Label) error {
	if s.Empty() {
		return ErrStackEmpty
	}
	s.entries[len(s.entries)-1].Label = lbl
	return nil
}

// SetTopTTL overwrites the TTL of the top entry.
func (s *Stack) SetTopTTL(ttl uint8) error {
	if s.Empty() {
		return ErrStackEmpty
	}
	s.entries[len(s.entries)-1].TTL = ttl
	return nil
}

// At returns the entry at depth i, where 0 is the bottom of the stack.
func (s *Stack) At(i int) (Entry, error) {
	if i < 0 || i >= len(s.entries) {
		return Entry{}, fmt.Errorf("label: no stack entry at depth %d (depth %d)", i, len(s.entries))
	}
	return s.entries[i], nil
}

// Entries returns a copy of the stack from bottom to top.
func (s *Stack) Entries() []Entry {
	out := make([]Entry, len(s.entries))
	copy(out, s.entries)
	return out
}

// Clone returns an independent copy of the stack.
func (s *Stack) Clone() *Stack {
	return &Stack{entries: s.Entries()}
}

// Reset empties the stack. The label stack modifier uses this to discard a
// packet: a packet whose stack has been reset is dropped.
func (s *Stack) Reset() { s.entries = s.entries[:0] }

// Consistent verifies the S-bit invariant: every entry except the bottom
// has S clear, and the bottom (if any) has S set.
func (s *Stack) Consistent() bool {
	for i, e := range s.entries {
		if e.Bottom != (i == 0) {
			return false
		}
	}
	return true
}

// Equal reports whether two stacks hold identical entries.
func (s *Stack) Equal(o *Stack) bool {
	if len(s.entries) != len(o.entries) {
		return false
	}
	for i := range s.entries {
		if s.entries[i] != o.entries[i] {
			return false
		}
	}
	return true
}

// String renders the stack top-first, e.g. "[top lbl=7 ... | lbl=3 ...]".
func (s *Stack) String() string {
	if s.Empty() {
		return "[empty]"
	}
	out := "["
	for i := len(s.entries) - 1; i >= 0; i-- {
		if i < len(s.entries)-1 {
			out += " | "
		}
		out += s.entries[i].String()
	}
	return out + "]"
}
