package signaling

import (
	"fmt"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/te"
)

// This file is the speaker's management-plane surface: the runtime
// provisioning, teardown and inspection entry points the mgmt RPC
// handlers call. Like every other speaker entry point it is not
// internally locked — callers serialise on the network lock.

// LSPInfo is one LSP generation crossing this node, as reported to the
// management plane.
type LSPInfo struct {
	ID          string   `json:"id"`   // base id
	Gen         int      `json:"gen"`  // generation (0 on non-ingress hops)
	Role        string   `json:"role"` // ingress | transit | egress
	FEC         string   `json:"fec"`  // "a.b.c.d/len"
	CoS         uint8    `json:"cos"`
	Route       []string `json:"route,omitempty"`
	Established bool     `json:"established"`
	Pending     bool     `json:"pending,omitempty"` // ingress base awaiting (re)signal
	InLabel     uint32   `json:"in_label,omitempty"`
	OutLabel    uint32   `json:"out_label,omitempty"`
	Upstream    string   `json:"upstream,omitempty"`
	Downstream  string   `json:"downstream,omitempty"`
	Bandwidth   float64  `json:"bandwidth,omitempty"`
}

// SessionInfo is one signaling session's observable state.
type SessionInfo struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	Up    bool   `json:"up"`
}

// validateSetup checks the parts of a setup request that do not depend
// on existing state: Setup and Provision share it, but only Setup
// rejects an id that is already in use (Provision re-signals it
// make-before-break instead).
func (s *Speaker) validateSetup(req ldp.SetupRequest) error {
	if req.ID == "" {
		return fmt.Errorf("signaling: LSP needs an id")
	}
	if len(req.ID) > MaxIDLen-4 {
		return fmt.Errorf("signaling: LSP id %q longer than %d", req.ID, MaxIDLen-4)
	}
	if len(req.Path) < 2 {
		return fmt.Errorf("signaling: path needs at least 2 nodes")
	}
	if req.Path[0] != s.name {
		return fmt.Errorf("signaling: path starts at %q, speaker is %q", req.Path[0], s.name)
	}
	if req.PHP && len(req.Path) < 3 {
		return fmt.Errorf("signaling: PHP needs at least 3 hops")
	}
	for _, n := range req.Path {
		if _, ok := s.ids[n]; !ok {
			return fmt.Errorf("signaling: unknown node %q in path", n)
		}
	}
	return nil
}

// Provision establishes or re-establishes an LSP at runtime. For a
// fresh id it behaves exactly like Setup. For an id this ingress
// already owns it signals the request as the next generation and
// switches traffic make-before-break: the old path keeps forwarding
// until the new one maps, then drains and releases — the same
// machinery protection switches use, driven by an operator instead of
// a failure.
func (s *Speaker) Provision(req ldp.SetupRequest, done func(error)) error {
	old, exists := s.byBase[req.ID]
	if !exists {
		return s.Setup(req, done)
	}
	if err := s.validateSetup(req); err != nil {
		return err
	}
	nl := &lsp{
		id:         fmt.Sprintf("%s#%d", req.ID, old.gen+1),
		base:       req.ID,
		gen:        old.gen + 1,
		fec:        req.FEC,
		cos:        req.CoS,
		php:        req.PHP,
		bandwidth:  req.Bandwidth,
		route:      append([]string(nil), req.Path...),
		downstream: req.Path[1],
		done:       done,
	}
	old.done = nil
	if _, live := s.lsps[old.id]; live {
		nl.prev = old // make-before-break: release old only once nl maps
	}
	s.byBase[nl.base] = nl
	if err := s.signal(nl); err != nil {
		delete(s.lsps, nl.id)
		s.byBase[nl.base] = old
		return err
	}
	return nil
}

// Teardown removes an ingress LSP at runtime: the release cascades
// downstream so every hop frees its label, tables and reservation, and
// the base id becomes reusable. Only the ingress may tear an LSP down.
func (s *Speaker) Teardown(base string) error {
	l, ok := s.byBase[base]
	if !ok {
		return fmt.Errorf("signaling: no ingress LSP %q on %s", base, s.name)
	}
	// Mid-make-before-break the superseded generation is still installed
	// downstream; release it too or its labels leak until session churn.
	if prev := l.prev; prev != nil {
		l.prev = nil
		s.releaseGeneration(prev)
	}
	if cur, live := s.lsps[l.id]; live && cur == l {
		s.sendRelease(l)
		s.tearLocal(l, false)
		delete(s.lsps, l.id)
	}
	l.done = nil
	delete(s.byBase, base)
	delete(s.avoids, base)
	return nil
}

// List reports every LSP generation with state on this node, plus
// ingress bases that are registered but currently unsignalled (failed,
// awaiting the maintenance sweep) — those appear with Pending set.
func (s *Speaker) List() []LSPInfo {
	out := make([]LSPInfo, 0, len(s.lsps))
	for _, id := range s.sortedLSPIDs() {
		out = append(out, s.info(s.lsps[id], false))
	}
	for _, base := range s.sortedBases() {
		l := s.byBase[base]
		if _, live := s.lsps[l.id]; !live {
			out = append(out, s.info(l, true))
		}
	}
	return out
}

func (s *Speaker) info(l *lsp, pending bool) LSPInfo {
	role := "transit"
	switch {
	case l.ingress():
		role = "ingress"
	case l.egress():
		role = "egress"
	}
	return LSPInfo{
		ID:          l.base,
		Gen:         l.gen,
		Role:        role,
		FEC:         fmt.Sprintf("%v/%d", l.fec.Dst, l.fec.PrefixLen),
		CoS:         uint8(l.cos),
		Route:       append([]string(nil), l.route...),
		Established: l.mapped,
		Pending:     pending,
		InLabel:     uint32(l.inLabel),
		OutLabel:    uint32(l.outLabel),
		Upstream:    l.upstream,
		Downstream:  l.downstream,
		Bandwidth:   l.bandwidth,
	}
}

// Sessions reports every signaling session's state in peer order.
func (s *Speaker) Sessions() []SessionInfo {
	peers := s.Peers()
	out := make([]SessionInfo, 0, len(peers))
	for _, p := range peers {
		sess := s.sessions[p]
		out = append(out, SessionInfo{Peer: p, State: sess.State().String(), Up: sess.Up()})
	}
	return out
}

// SetGuard attaches (or replaces) the admission guard observing label
// advertisements, and replays the current advertisement state into it
// so labels mapped before the guard existed stay admitted. This is how
// guard.set arms a guard on a node that booted without one.
func (s *Speaker) SetGuard(g LabelGuard) {
	s.cfg.guard = g
	if g == nil {
		return
	}
	for _, id := range s.sortedLSPIDs() {
		l := s.lsps[id]
		if l.upstream != "" && l.inLabel != 0 && l.inLabel != label.ImplicitNull {
			g.Advertise(l.upstream, l.inLabel)
		}
	}
}

// Path computes a CSPF path from this node to egress with the
// requested bandwidth — lsp.provision uses it for requests that name
// only an egress and leave routing to the node.
func (s *Speaker) Path(egress string, bandwidth float64) ([]string, error) {
	if _, ok := s.ids[egress]; !ok {
		return nil, fmt.Errorf("signaling: unknown node %q", egress)
	}
	return s.topo.CSPF(te.PathRequest{From: s.name, To: egress, BandwidthBPS: bandwidth})
}
