package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a lock-free fixed-bucket histogram with Prometheus "le"
// semantics: bucket i counts observations v <= Bounds[i], and one
// overflow bucket catches everything above the last bound. Unlike
// stats.Sample it never allocates per observation and can be read while
// writers run, which is what lets each dataplane shard own one and the
// exporter scrape mid-run; shard histograms merge on Snapshot() exactly
// like the per-worker counters.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow (+Inf)
	total  atomic.Uint64
	// sumBits carries the float64 observation sum as bits, updated by
	// compare-and-swap so Observe stays lock-free.
	sumBits atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// At least one bound is required; a misordered list is a programming
// error and panics.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %d: %g <= %g",
				i, bounds[i], bounds[i-1]))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// LatencyBounds is the default bucket layout for per-batch processing
// times: roughly logarithmic from 1 µs to 1 s.
func LatencyBounds() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1,
	}
}

// DepthBounds is the bucket layout for label stack depths: one bucket
// per depth the embedded architecture supports (0..label.MaxDepth).
func DepthBounds() []float64 { return []float64{0, 1, 2, 3} }

// BatchBounds is the bucket layout for batch occupancy (packets per
// egress flush, per coalesced frame): powers of two up to 512, so the
// histogram shows directly how well batching amortises.
func BatchBounds() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or overflow
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds o's buckets into h. The bucket layouts must match — merged
// histograms are always siblings built from the same bounds (one per
// shard), so a mismatch is a programming error and panics.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	if len(o.bounds) != len(h.bounds) {
		panic("telemetry: merging histograms with different bucket layouts")
	}
	for i, b := range o.bounds {
		if b != h.bounds[i] {
			panic("telemetry: merging histograms with different bucket layouts")
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.total.Add(o.total.Load())
	add := math.Float64frombits(o.sumBits.Load())
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + add)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistSnapshot is a point-in-time copy of a histogram, in non-cumulative
// per-bucket counts (the exporter accumulates them into "le" form).
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the overflow (+Inf) bucket.
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram. Like the engine's Snapshot it may be
// taken while writers run; totals are exact once the writers stop.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// String renders a compact non-empty-bucket summary for logs.
func (s HistSnapshot) String() string {
	out := fmt.Sprintf("hist{n=%d sum=%g", s.Count, s.Sum)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if i < len(s.Bounds) {
			out += fmt.Sprintf(" le%g=%d", s.Bounds[i], c)
		} else {
			out += fmt.Sprintf(" inf=%d", c)
		}
	}
	return out + "}"
}
