// Package wave captures per-cycle signal traces from an rtl.Simulator and
// renders them as ASCII waveforms or VCD files. It is the stand-in for the
// Quartus waveform viewer screenshots that form Figures 14-16 of Peterkin
// & Ionescu's "Embedded MPLS Architecture": the same signal transitions,
// in a form that is diffable and assertable in tests.
package wave

import (
	"fmt"
	"io"
	"strings"

	"embeddedmpls/internal/rtl"
)

// Tracer records the value of a chosen set of signals at the end of every
// simulator cycle.
type Tracer struct {
	signals []*rtl.Signal
	cycles  []uint64
	rows    [][]uint64
}

// NewTracer attaches a tracer to sim, sampling the given signals after
// every Step.
func NewTracer(sim *rtl.Simulator, signals ...*rtl.Signal) *Tracer {
	t := &Tracer{signals: signals}
	sim.OnSample(func(cycle uint64) {
		row := make([]uint64, len(t.signals))
		for i, s := range t.signals {
			row[i] = s.Get()
		}
		t.cycles = append(t.cycles, cycle)
		t.rows = append(t.rows, row)
	})
	return t
}

// Len returns the number of sampled cycles.
func (t *Tracer) Len() int { return len(t.rows) }

// Names returns the traced signal names in column order.
func (t *Tracer) Names() []string {
	out := make([]string, len(t.signals))
	for i, s := range t.signals {
		out[i] = s.Name()
	}
	return out
}

// column returns the index of the named signal, or -1.
func (t *Tracer) column(name string) int {
	for i, s := range t.signals {
		if s.Name() == name {
			return i
		}
	}
	return -1
}

// Value returns the sampled value of the named signal at row index i
// (the i-th recorded cycle).
func (t *Tracer) Value(name string, i int) (uint64, error) {
	col := t.column(name)
	if col < 0 {
		return 0, fmt.Errorf("wave: signal %q is not traced", name)
	}
	if i < 0 || i >= len(t.rows) {
		return 0, fmt.Errorf("wave: row %d out of range (have %d)", i, len(t.rows))
	}
	return t.rows[i][col], nil
}

// FirstCycle returns the earliest recorded cycle at which pred holds for
// the named signal, and whether one exists. Tests use it to locate pulses
// such as lookup_done going high.
func (t *Tracer) FirstCycle(name string, pred func(v uint64) bool) (uint64, bool) {
	col := t.column(name)
	if col < 0 {
		return 0, false
	}
	for i, row := range t.rows {
		if pred(row[col]) {
			return t.cycles[i], true
		}
	}
	return 0, false
}

// CountCycles returns how many recorded cycles satisfy pred for the named
// signal; a one-cycle pulse counts once.
func (t *Tracer) CountCycles(name string, pred func(v uint64) bool) int {
	col := t.column(name)
	if col < 0 {
		return 0
	}
	n := 0
	for _, row := range t.rows {
		if pred(row[col]) {
			n++
		}
	}
	return n
}

// Changes returns the sequence of (cycle, value) pairs at which the named
// signal changed, including its initial sampled value.
func (t *Tracer) Changes(name string) []Change {
	col := t.column(name)
	if col < 0 || len(t.rows) == 0 {
		return nil
	}
	var out []Change
	var last uint64
	for i, row := range t.rows {
		if i == 0 || row[col] != last {
			out = append(out, Change{Cycle: t.cycles[i], Value: row[col]})
			last = row[col]
		}
	}
	return out
}

// Change is one observed signal transition.
type Change struct {
	Cycle uint64
	Value uint64
}

// WriteTable renders the trace as a table with one row per cycle on which
// any traced signal changed (plus the first cycle), like the transition
// list of an HDL simulator.
func (t *Tracer) WriteTable(w io.Writer) error {
	names := t.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
		if widths[i] < 6 {
			widths[i] = 6
		}
	}
	if _, err := fmt.Fprintf(w, "%7s", "cycle"); err != nil {
		return err
	}
	for i, n := range names {
		if _, err := fmt.Fprintf(w, "  %*s", widths[i], n); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	var prev []uint64
	for r, row := range t.rows {
		if prev != nil && equalRows(prev, row) {
			continue
		}
		if _, err := fmt.Fprintf(w, "%7d", t.cycles[r]); err != nil {
			return err
		}
		for i, v := range row {
			if _, err := fmt.Fprintf(w, "  %*d", widths[i], v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		prev = row
	}
	return nil
}

func equalRows(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteWave renders single-bit signals as horizontal waveforms and
// multi-bit signals as value change annotations:
//
//	lookup_done  ________/\______
//	r_index      0 ->1@12 ->2@15 ...
func (t *Tracer) WriteWave(w io.Writer) error {
	nameW := 0
	for _, s := range t.signals {
		if len(s.Name()) > nameW {
			nameW = len(s.Name())
		}
	}
	for col, s := range t.signals {
		if _, err := fmt.Fprintf(w, "%-*s  ", nameW, s.Name()); err != nil {
			return err
		}
		if s.Width() == 1 {
			var b strings.Builder
			for _, row := range t.rows {
				if row[col] != 0 {
					b.WriteByte('#')
				} else {
					b.WriteByte('_')
				}
			}
			if _, err := fmt.Fprintln(w, b.String()); err != nil {
				return err
			}
			continue
		}
		parts := make([]string, 0, 8)
		for i, ch := range t.Changes(s.Name()) {
			if i == 0 {
				parts = append(parts, fmt.Sprintf("%d", ch.Value))
			} else {
				parts = append(parts, fmt.Sprintf("->%d@%d", ch.Value, ch.Cycle))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}
