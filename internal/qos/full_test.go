package qos

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

func classedPacket(cos label.CoS) *packet.Packet {
	p := packet.New(1, 2, 64, nil)
	if err := p.Stack.Push(label.Entry{Label: 100, CoS: cos, TTL: 64}); err != nil {
		panic(err)
	}
	return p
}

// Full must predict Enqueue's hard rejections without ever counting a
// drop — the dataplane engine polls it to apply backpressure.
func TestFullPredictsEnqueue(t *testing.T) {
	t.Run("fifo", func(t *testing.T) {
		q := NewFIFO(2)
		for i := 0; i < 2; i++ {
			if q.Full(classedPacket(0)) {
				t.Fatalf("full at %d/2", i)
			}
			if !q.Enqueue(classedPacket(0)) {
				t.Fatalf("enqueue %d rejected", i)
			}
		}
		if !q.Full(classedPacket(7)) {
			t.Error("not full at capacity")
		}
		if q.Dropped() != 0 {
			t.Errorf("Full counted %d drops", q.Dropped())
		}
		q.Dequeue()
		if q.Full(classedPacket(0)) {
			t.Error("still full after dequeue")
		}
	})
	t.Run("priority-per-class", func(t *testing.T) {
		q := NewPriority(1)
		if !q.Enqueue(classedPacket(0)) {
			t.Fatal("first class-0 packet rejected")
		}
		if !q.Full(classedPacket(0)) {
			t.Error("class 0 not full at per-class capacity")
		}
		// Other classes still have room: Full is per class.
		if q.Full(classedPacket(7)) {
			t.Error("class 7 reported full while empty")
		}
		if q.Dropped() != 0 {
			t.Errorf("Full counted %d drops", q.Dropped())
		}
	})
	t.Run("wred-hard-limit", func(t *testing.T) {
		q := NewRED(2, REDParams{MinTh: 1000, MaxTh: 2000, MaxP: 0.5}, 1)
		for i := 0; i < 2; i++ {
			if !q.Enqueue(classedPacket(0)) {
				t.Fatalf("enqueue %d rejected below thresholds", i)
			}
		}
		if !q.Full(classedPacket(0)) {
			t.Error("RED not full at hard capacity")
		}
	})
}
