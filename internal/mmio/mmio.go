// Package mmio makes the paper's hardware/software boundary concrete: the
// label stack modifier is exposed as a memory-mapped peripheral with a
// register file, and a firmware-style driver programs it using nothing
// but 32-bit bus reads and writes — the way the "routing functionality in
// software" would actually talk to the FPGA block on an embedded board.
//
// Every bus access advances the peripheral's clock, so driver-level
// operations pay realistic polling overhead on top of the Table 6 cycle
// counts.
package mmio

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/lsm"
)

// Register offsets of the label stack modifier peripheral (word aligned).
const (
	RegCtrl        uint32 = 0x00 // [2:0] opcode, [3] go, [4] reset
	RegStatus      uint32 = 0x04 // [0] done (sticky), [1] busy, [2] discard, [3] found
	RegDataIn      uint32 = 0x08 // packed stack entry for a user push
	RegPacketID    uint32 = 0x0c
	RegOldLabel    uint32 = 0x10
	RegNewLabel    uint32 = 0x14
	RegOperationIn uint32 = 0x18
	RegLevel       uint32 = 0x1c
	RegLabelLookup uint32 = 0x20
	RegTTLIn       uint32 = 0x24
	RegCoSIn       uint32 = 0x28
	RegLabelOut    uint32 = 0x2c // read only
	RegOperationOu uint32 = 0x30 // read only
	RegStackTop    uint32 = 0x34 // read only: packed top entry
	RegStackSize   uint32 = 0x38 // read only
	RegCycleCount  uint32 = 0x3c // read only: free-running cycle counter
	RegIndexOut    uint32 = 0x40 // read only: index half of a read-out pair
	RegWriteCount  uint32 = 0x44 // read only: pairs stored at the level in RegLevel
)

// Ctrl register bits.
const (
	CtrlOpMask uint32 = 0x7
	CtrlGo     uint32 = 1 << 3
	CtrlReset  uint32 = 1 << 4
)

// Status register bits.
const (
	StatusDone    uint32 = 1 << 0
	StatusBusy    uint32 = 1 << 1
	StatusDiscard uint32 = 1 << 2
	StatusFound   uint32 = 1 << 3
)

// Bus is a 32-bit word-addressed register space.
type Bus interface {
	Read(addr uint32) (uint32, error)
	Write(addr uint32, v uint32) error
}

// ErrBadAddress reports an access outside the register map.
var ErrBadAddress = errors.New("mmio: bad register address")

// Peripheral maps an lsm.HW behind the register file. Each bus access
// advances the device clock by AccessCycles (bus and core share the
// clock domain), so firmware polling costs real cycles.
type Peripheral struct {
	hw *lsm.HW
	// AccessCycles is the clock cost of one bus transaction (>= 1).
	AccessCycles int

	stickyDone  bool
	stickyFound bool
}

// NewPeripheral wraps hw. accessCycles < 1 is clamped to 1.
func NewPeripheral(hw *lsm.HW, accessCycles int) *Peripheral {
	if accessCycles < 1 {
		accessCycles = 1
	}
	p := &Peripheral{hw: hw, AccessCycles: accessCycles}
	hw.Sim.OnSample(func(uint64) {
		// The done pulse lasts one cycle; latch it so polling firmware
		// cannot miss it between accesses.
		if hw.Done.Bool() {
			p.stickyDone = true
		}
		if hw.SearchFound() {
			p.stickyFound = true
		}
	})
	return p
}

// tick advances the shared clock for one bus transaction.
func (p *Peripheral) tick() {
	for i := 0; i < p.AccessCycles; i++ {
		p.hw.Sim.Step()
	}
}

// Read implements Bus.
func (p *Peripheral) Read(addr uint32) (uint32, error) {
	p.tick()
	hw := p.hw
	switch addr {
	case RegCtrl:
		v := uint32(hw.ExtOp.Get()) & CtrlOpMask
		if hw.Enable.Bool() {
			v |= CtrlGo
		}
		if hw.Reset.Bool() {
			v |= CtrlReset
		}
		return v, nil
	case RegStatus:
		var v uint32
		if p.stickyDone {
			v |= StatusDone
		}
		if hw.MainState.Get() != 0 {
			v |= StatusBusy
		}
		if hw.PacketDiscard.Bool() {
			v |= StatusDiscard
		}
		if p.stickyFound {
			v |= StatusFound
		}
		return v, nil
	case RegDataIn:
		return uint32(hw.DataIn.Get()), nil
	case RegPacketID:
		return uint32(hw.PacketID.Get()), nil
	case RegOldLabel:
		return uint32(hw.OldLabel.Get()), nil
	case RegNewLabel:
		return uint32(hw.NewLabel.Get()), nil
	case RegOperationIn:
		return uint32(hw.OperationIn.Get()), nil
	case RegLevel:
		return uint32(hw.Level.Get()), nil
	case RegLabelLookup:
		return uint32(hw.LabelLookup.Get()), nil
	case RegTTLIn:
		return uint32(hw.TTLIn.Get()), nil
	case RegCoSIn:
		return uint32(hw.CoSIn.Get()), nil
	case RegLabelOut:
		return uint32(hw.LabelOut.Get()), nil
	case RegOperationOu:
		return uint32(hw.OperationOut.Get()), nil
	case RegStackTop:
		return uint32(hw.Stack.Top.Get()), nil
	case RegStackSize:
		return uint32(hw.Stack.Size.Get()), nil
	case RegCycleCount:
		return uint32(hw.Sim.Cycle()), nil
	case RegIndexOut:
		return uint32(hw.IndexOut.Get()), nil
	case RegWriteCount:
		lv := hw.Level.Get()
		if lv < 1 || lv > 3 {
			return 0, fmt.Errorf("%w: write count needs a valid level, have %d", ErrBadAddress, lv)
		}
		return uint32(hw.Sim.Lookup("ib_wcnt_" + string(byte('0'+lv))).Get()), nil
	default:
		return 0, fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
}

// Write implements Bus. Writing CTRL clears the sticky status bits, like
// acknowledging an interrupt.
func (p *Peripheral) Write(addr uint32, v uint32) error {
	hw := p.hw
	switch addr {
	case RegCtrl:
		p.stickyDone = false
		p.stickyFound = false
		hw.ExtOp.Set(uint64(v & CtrlOpMask))
		hw.Enable.SetBool(v&CtrlGo != 0)
		hw.Reset.SetBool(v&CtrlReset != 0)
	case RegDataIn:
		hw.DataIn.Set(uint64(v))
	case RegPacketID:
		hw.PacketID.Set(uint64(v))
	case RegOldLabel:
		hw.OldLabel.Set(uint64(v))
	case RegNewLabel:
		hw.NewLabel.Set(uint64(v))
	case RegOperationIn:
		hw.OperationIn.Set(uint64(v))
	case RegLevel:
		hw.Level.Set(uint64(v))
	case RegLabelLookup:
		hw.LabelLookup.Set(uint64(v))
	case RegTTLIn:
		hw.TTLIn.Set(uint64(v))
	case RegCoSIn:
		hw.CoSIn.Set(uint64(v))
	case RegLabelOut, RegOperationOu, RegStackTop, RegStackSize, RegStatus, RegCycleCount, RegIndexOut, RegWriteCount:
		return fmt.Errorf("%w: %#x is read only", ErrBadAddress, addr)
	default:
		return fmt.Errorf("%w: %#x", ErrBadAddress, addr)
	}
	p.tick()
	return nil
}
