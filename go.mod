module embeddedmpls

go 1.22
