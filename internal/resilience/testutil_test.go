package resilience

import (
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
)

// diamondNet builds a diamond a-{b,c}-d with hardware planes; a-b-d is
// the low-metric primary, a-c-d the backup.
func diamondNet(t *testing.T) *router.Network {
	t.Helper()
	nodes := []router.NodeSpec{
		{Name: "a", Hardware: true, RouterType: lsm.LER},
		{Name: "b", Hardware: true, RouterType: lsm.LSR},
		{Name: "c", Hardware: true, RouterType: lsm.LSR},
		{Name: "d", Hardware: true, RouterType: lsm.LER},
	}
	links := []router.LinkSpec{
		{A: "a", B: "b", RateBPS: 10e6, Delay: 0.001, Metric: 1},
		{A: "b", B: "d", RateBPS: 10e6, Delay: 0.001, Metric: 1},
		{A: "a", B: "c", RateBPS: 10e6, Delay: 0.001, Metric: 5},
		{A: "c", B: "d", RateBPS: 10e6, Delay: 0.001, Metric: 5},
	}
	n, err := router.Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// setupDiamondLSP installs the primary a-b-d LSP and returns its FEC
// destination.
func setupDiamondLSP(t *testing.T, n *router.Network) packet.Addr {
	t.Helper()
	dst := packet.AddrFrom(10, 0, 0, 9)
	if _, err := n.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b", "d"},
	}); err != nil {
		t.Fatal(err)
	}
	return dst
}
