// Package config loads declarative network scenarios from JSON: nodes,
// links, tunnels, LSPs (explicit or CSPF-routed) and traffic flows. The
// mplssim command runs these files so experiments are reproducible
// artifacts instead of flag soup.
package config

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"

	"embeddedmpls/internal/guard"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/qos"
	"embeddedmpls/internal/resilience"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/te"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/trafficgen"
	"embeddedmpls/internal/transport"
)

// Scenario is the root of a scenario file.
type Scenario struct {
	Name    string   `json:"name"`
	Nodes   []Node   `json:"nodes"`
	Links   []Link   `json:"links"`
	Tunnels []Tunnel `json:"tunnels,omitempty"`
	LSPs    []LSP    `json:"lsps,omitempty"`
	Flows   []Flow   `json:"flows,omitempty"`
	// DurationS bounds the traffic generators ("stop" defaults to it).
	DurationS float64 `json:"duration_s"`
	// Transport, when present, maps node names to UDP listen addresses
	// for distributed operation: each cmd/mplsnode process builds this
	// same scenario, runs the one router named by its -node flag, and
	// exchanges labeled packets with its neighbours over these sockets.
	Transport *TransportSection `json:"transport,omitempty"`
	// Guard, when present, arms the per-link ingress admission guard on
	// every distributed node (BuildNode): label-spoof filtering, TTL
	// security, rate limiting and malformed-frame quarantine.
	Guard *GuardSection `json:"guard,omitempty"`
}

// TransportSection declares the inter-process wiring of a scenario.
type TransportSection struct {
	// Kind is the transport; "udp" is the only kind (and the default).
	Kind string `json:"kind,omitempty"`
	// Nodes maps every node name to its UDP listen address
	// (host:port). All of a node's neighbours must be listed so its
	// process knows where to dial.
	Nodes map[string]string `json:"nodes"`
	// Mgmt maps node names to management-plane TCP listen addresses
	// (host:port). A node listed here serves the mplsctl RPC surface
	// (lsp provisioning, infobase dumps, telemetry scrape, config
	// reload) on that address; nodes absent from the map run without a
	// management listener.
	Mgmt map[string]string `json:"mgmt,omitempty"`
	// Coalesce packs up to this many packets into one datagram on
	// every inter-process link (transport.WithCoalesce); 0 or 1 sends
	// one datagram per packet.
	Coalesce int `json:"coalesce,omitempty"`
	// SysBatch sets how many datagrams one send/receive syscall moves
	// (transport.WithSysBatch); 0 keeps the transport default.
	SysBatch int `json:"sys_batch,omitempty"`
	// Shards, when > 1, runs each software-plane node's forwarder as a
	// concurrent engine with that many shard workers and binds it to the
	// wire batch-first in both directions: arrivals land on a sharded
	// SO_REUSEPORT listener feeding pinned shard queues, and the engine's
	// egress pump flushes staged batches straight onto the links'
	// SendBatch path. 0 or 1 keeps the serial per-packet path. Ignored
	// for hardware-plane nodes.
	Shards int `json:"shards,omitempty"`
}

// options renders the section's batching knobs as transport options.
func (t *TransportSection) options() []transport.Option {
	var opts []transport.Option
	if t.Coalesce > 1 {
		opts = append(opts, transport.WithCoalesce(t.Coalesce))
	}
	if t.SysBatch > 0 {
		opts = append(opts, transport.WithSysBatch(t.SysBatch))
	}
	return opts
}

// GuardSection declares the default ingress admission policy applied
// to every link of every distributed node, with optional per-link
// overrides. Zero values disable the corresponding check.
type GuardSection struct {
	// SpoofFilter admits labelled packets from a neighbour only when
	// they carry a label this node actually advertised to it.
	SpoofFilter bool `json:"spoof_filter,omitempty"`
	// TTLMin is the GTSM-style minimum TTL an arriving packet must
	// carry (checked on the top label entry for labelled packets).
	TTLMin int `json:"ttl_min,omitempty"`
	// RatePPS token-bucket-limits arrivals per link, with CoS-aware
	// shedding: best-effort is shed first, control traffic never.
	RatePPS float64 `json:"rate_pps,omitempty"`
	// Burst is the bucket depth; 0 derives it from RatePPS.
	Burst int `json:"burst,omitempty"`
	// QuarantineThreshold trips a per-peer circuit breaker after this
	// many malformed datagrams inside QuarantineWindowS, blocking that
	// peer's labelled traffic for QuarantineHoldS (control passes).
	QuarantineThreshold int     `json:"quarantine_threshold,omitempty"`
	QuarantineWindowS   float64 `json:"quarantine_window_s,omitempty"`
	QuarantineHoldS     float64 `json:"quarantine_hold_s,omitempty"`
	// Links overrides the defaults for specific (node, peer) pairs.
	Links []GuardLink `json:"links,omitempty"`
}

// GuardLink overrides the guard policy for one direction of one link:
// the guard on Node polices what arrives from Peer. Unset fields
// (nil/zero) inherit the section defaults.
type GuardLink struct {
	Node                string   `json:"node"`
	Peer                string   `json:"peer"`
	SpoofFilter         *bool    `json:"spoof_filter,omitempty"`
	TTLMin              int      `json:"ttl_min,omitempty"`
	RatePPS             float64  `json:"rate_pps,omitempty"`
	Burst               int      `json:"burst,omitempty"`
	QuarantineThreshold int      `json:"quarantine_threshold,omitempty"`
	QuarantineWindowS   float64  `json:"quarantine_window_s,omitempty"`
	QuarantineHoldS     float64  `json:"quarantine_hold_s,omitempty"`
}

// policy renders the section defaults as a guard policy.
func (g *GuardSection) policy() guard.Policy {
	return guard.Policy{
		SpoofFilter:         g.SpoofFilter,
		MinTTL:              uint8(g.TTLMin),
		RatePPS:             g.RatePPS,
		Burst:               g.Burst,
		QuarantineThreshold: g.QuarantineThreshold,
		QuarantineWindow:    g.QuarantineWindowS,
		QuarantineHold:      g.QuarantineHoldS,
	}
}

// policy applies the link's overrides on top of the section default.
func (gl *GuardLink) policy(def guard.Policy) guard.Policy {
	p := def
	if gl.SpoofFilter != nil {
		p.SpoofFilter = *gl.SpoofFilter
	}
	if gl.TTLMin > 0 {
		p.MinTTL = uint8(gl.TTLMin)
	}
	if gl.RatePPS > 0 {
		p.RatePPS = gl.RatePPS
	}
	if gl.Burst > 0 {
		p.Burst = gl.Burst
	}
	if gl.QuarantineThreshold > 0 {
		p.QuarantineThreshold = gl.QuarantineThreshold
	}
	if gl.QuarantineWindowS > 0 {
		p.QuarantineWindow = gl.QuarantineWindowS
	}
	if gl.QuarantineHoldS > 0 {
		p.QuarantineHold = gl.QuarantineHoldS
	}
	return p
}

// Node declares one router.
type Node struct {
	Name string `json:"name"`
	// Plane is "hardware" (the embedded device) or "software".
	Plane string `json:"plane"`
	// Type is "ler" or "lsr" (hardware planes only; default ler).
	Type string `json:"type,omitempty"`
}

// Link declares one duplex connection.
type Link struct {
	A        string  `json:"a"`
	B        string  `json:"b"`
	RateMbps float64 `json:"rate_mbps"`
	DelayMs  float64 `json:"delay_ms"`
	// Queue is "fifo" (default), "priority" or "wrr".
	Queue    string  `json:"queue,omitempty"`
	QueueCap int     `json:"queue_cap,omitempty"`
	Metric   float64 `json:"metric,omitempty"`
	// Transport selects the in-process link kind: "" or "sim" for a
	// simulated link, "udp" for loopback UDP sockets. (Inter-process
	// wiring uses the scenario-level transport section instead.)
	Transport string `json:"transport,omitempty"`
	// Coalesce and SysBatch tune a "udp" link's batching: packets per
	// datagram and datagrams per syscall (router.LinkSpec fields of
	// the same names). Ignored for simulated links.
	Coalesce int `json:"coalesce,omitempty"`
	SysBatch int `json:"sys_batch,omitempty"`
}

// Tunnel declares a hierarchical LSP.
type Tunnel struct {
	ID            string   `json:"id"`
	Path          []string `json:"path"`
	BandwidthMbps float64  `json:"bandwidth_mbps,omitempty"`
}

// LSP declares a label switched path. Give either an explicit Path or
// From/To for CSPF routing.
type LSP struct {
	ID            string   `json:"id"`
	Dst           string   `json:"dst"` // dotted quad
	PrefixLen     int      `json:"prefix_len"`
	Path          []string `json:"path,omitempty"`
	From          string   `json:"from,omitempty"`
	To            string   `json:"to,omitempty"`
	BandwidthMbps float64  `json:"bandwidth_mbps,omitempty"`
	CoS           uint8    `json:"cos,omitempty"`
	PHP           bool     `json:"php,omitempty"`
}

// Flow declares a traffic generator.
type Flow struct {
	ID   uint16 `json:"id"`
	Kind string `json:"kind"` // voip, cbr, bulk, poisson, onoff
	From string `json:"from"`
	Dst  string `json:"dst"`
	// Kind-specific knobs (unused ones ignored).
	SizeBytes  int     `json:"size_bytes,omitempty"`
	IntervalMs float64 `json:"interval_ms,omitempty"`
	RateMbps   float64 `json:"rate_mbps,omitempty"`
	RatePPS    float64 `json:"rate_pps,omitempty"`
	OnMs       float64 `json:"on_ms,omitempty"`
	OffMs      float64 `json:"off_ms,omitempty"`
	StartS     float64 `json:"start_s,omitempty"`
	StopS      float64 `json:"stop_s,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
}

// Errors.
var (
	ErrValidation = errors.New("config: invalid scenario")
)

// Load parses and validates a scenario.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

func (s *Scenario) validate() error {
	if len(s.Nodes) == 0 {
		return fmt.Errorf("%w: no nodes", ErrValidation)
	}
	names := map[string]bool{}
	for _, n := range s.Nodes {
		if n.Name == "" {
			return fmt.Errorf("%w: node without a name", ErrValidation)
		}
		if names[n.Name] {
			return fmt.Errorf("%w: duplicate node %q", ErrValidation, n.Name)
		}
		names[n.Name] = true
		switch n.Plane {
		case "", "software", "hardware":
		default:
			return fmt.Errorf("%w: node %q plane %q", ErrValidation, n.Name, n.Plane)
		}
		switch n.Type {
		case "", "ler", "lsr":
		default:
			return fmt.Errorf("%w: node %q type %q", ErrValidation, n.Name, n.Type)
		}
	}
	for i, l := range s.Links {
		if !names[l.A] || !names[l.B] {
			return fmt.Errorf("%w: link %d endpoints %q-%q", ErrValidation, i, l.A, l.B)
		}
		if l.RateMbps <= 0 {
			return fmt.Errorf("%w: link %d rate %v", ErrValidation, i, l.RateMbps)
		}
		switch l.Queue {
		case "", "fifo", "priority", "wrr":
		default:
			return fmt.Errorf("%w: link %d queue %q", ErrValidation, i, l.Queue)
		}
		switch l.Transport {
		case "", router.TransportSim, router.TransportUDP:
		default:
			return fmt.Errorf("%w: link %d transport %q", ErrValidation, i, l.Transport)
		}
		if l.Coalesce < 0 || l.Coalesce > transport.MaxFramePackets {
			return fmt.Errorf("%w: link %d coalesce %d (max %d)", ErrValidation, i, l.Coalesce, transport.MaxFramePackets)
		}
		if l.SysBatch < 0 || l.SysBatch > 128 {
			return fmt.Errorf("%w: link %d sys_batch %d (max 128)", ErrValidation, i, l.SysBatch)
		}
	}
	if t := s.Transport; t != nil {
		switch t.Kind {
		case "", "udp":
		default:
			return fmt.Errorf("%w: transport kind %q (only udp)", ErrValidation, t.Kind)
		}
		for name, addr := range t.Nodes {
			if !names[name] {
				return fmt.Errorf("%w: transport lists unknown node %q", ErrValidation, name)
			}
			if addr == "" {
				return fmt.Errorf("%w: transport node %q has no address", ErrValidation, name)
			}
		}
		for name, addr := range t.Mgmt {
			if !names[name] {
				return fmt.Errorf("%w: transport mgmt lists unknown node %q", ErrValidation, name)
			}
			if addr == "" {
				return fmt.Errorf("%w: transport mgmt node %q has no address", ErrValidation, name)
			}
		}
		if t.Coalesce < 0 || t.Coalesce > transport.MaxFramePackets {
			return fmt.Errorf("%w: transport coalesce %d (max %d)", ErrValidation, t.Coalesce, transport.MaxFramePackets)
		}
		if t.SysBatch < 0 || t.SysBatch > 128 {
			return fmt.Errorf("%w: transport sys_batch %d (max 128)", ErrValidation, t.SysBatch)
		}
		if t.Shards < 0 || t.Shards > 64 {
			return fmt.Errorf("%w: transport shards %d (max 64)", ErrValidation, t.Shards)
		}
	}
	for _, l := range s.LSPs {
		if l.ID == "" || l.Dst == "" {
			return fmt.Errorf("%w: LSP needs id and dst", ErrValidation)
		}
		if len(l.Path) == 0 && (l.From == "" || l.To == "") {
			return fmt.Errorf("%w: LSP %q needs a path or from/to", ErrValidation, l.ID)
		}
		if _, err := ParseAddr(l.Dst); err != nil {
			return fmt.Errorf("%w: LSP %q: %v", ErrValidation, l.ID, err)
		}
	}
	for _, f := range s.Flows {
		if !names[f.From] {
			return fmt.Errorf("%w: flow %d source %q", ErrValidation, f.ID, f.From)
		}
		if _, err := ParseAddr(f.Dst); err != nil {
			return fmt.Errorf("%w: flow %d: %v", ErrValidation, f.ID, err)
		}
		switch f.Kind {
		case "voip", "cbr", "bulk", "poisson", "onoff":
		default:
			return fmt.Errorf("%w: flow %d kind %q", ErrValidation, f.ID, f.Kind)
		}
	}
	if g := s.Guard; g != nil {
		check := func(where string, ttl, burst, threshold int, pps, win, hold float64) error {
			if ttl < 0 || ttl > 255 {
				return fmt.Errorf("%w: guard %s ttl_min %d (0..255)", ErrValidation, where, ttl)
			}
			if pps < 0 || win < 0 || hold < 0 {
				return fmt.Errorf("%w: guard %s has a negative rate or window", ErrValidation, where)
			}
			if burst < 0 || threshold < 0 {
				return fmt.Errorf("%w: guard %s has a negative burst or threshold", ErrValidation, where)
			}
			return nil
		}
		if err := check("defaults", g.TTLMin, g.Burst, g.QuarantineThreshold,
			g.RatePPS, g.QuarantineWindowS, g.QuarantineHoldS); err != nil {
			return err
		}
		adj := map[string]map[string]bool{}
		for _, l := range s.Links {
			if adj[l.A] == nil {
				adj[l.A] = map[string]bool{}
			}
			if adj[l.B] == nil {
				adj[l.B] = map[string]bool{}
			}
			adj[l.A][l.B] = true
			adj[l.B][l.A] = true
		}
		for i, gl := range g.Links {
			where := fmt.Sprintf("link %d (%s<-%s)", i, gl.Node, gl.Peer)
			if !names[gl.Node] || !names[gl.Peer] {
				return fmt.Errorf("%w: guard link %d names unknown node %q or %q", ErrValidation, i, gl.Node, gl.Peer)
			}
			if !adj[gl.Node][gl.Peer] {
				return fmt.Errorf("%w: guard link %d: no %s-%s link in the topology", ErrValidation, i, gl.Node, gl.Peer)
			}
			if err := check(where, gl.TTLMin, gl.Burst, gl.QuarantineThreshold,
				gl.RatePPS, gl.QuarantineWindowS, gl.QuarantineHoldS); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParseAddr parses a dotted-quad address.
func ParseAddr(s string) (packet.Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q is not dotted quad", s)
	}
	var out packet.Addr
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("address %q has bad octet %q", s, p)
		}
		out = out<<8 | packet.Addr(v)
	}
	return out, nil
}

// Built is a constructed scenario ready to run.
type Built struct {
	Scenario  *Scenario
	Net       *router.Network
	Collector *trafficgen.Collector
	// Egresses lists the routers where flows terminate.
	Egresses []string
	// LocalNode is set by BuildNode/BuildNodeGhost: the one router this
	// process runs.
	LocalNode string
	// Speaker is set by BuildNode: the local signaling instance. LSPs
	// whose ingress is this node are signalled through it; all label
	// state arrives over the wire.
	Speaker *signaling.Speaker
	// Events is set by BuildNode: control-plane event counters
	// (sessions, mappings, withdraws, protection switches).
	Events *telemetry.EventCounters
	// Guard is set by BuildNode when the scenario has a guard section:
	// the node's ingress admission guard, for telemetry inspection.
	Guard *guard.Guard
	// Drops is set by BuildNode: the node-level drop counters behind the
	// network's telemetry sink. Callers may attach their own sink with
	// Net.SetTelemetry instead, but the management plane's scrape
	// handler reads these.
	Drops *telemetry.DropCounters
	// Registry is set by BuildNode: every mpls_* metric of the node —
	// forwarding drops, control-plane events, guard rejections,
	// transport counters, signaling message totals — registered for the
	// Prometheus text exposition the management plane scrapes.
	Registry *telemetry.Registry
}

// Build constructs the network, establishes tunnels and LSPs, installs
// the traffic generators and wires collectors at every LSP egress.
func (s *Scenario) Build() (*Built, error) { return s.build("") }

// specs converts the scenario's nodes and links to router-layer specs.
func (s *Scenario) specs() ([]router.NodeSpec, []router.LinkSpec) {
	var nodes []router.NodeSpec
	for _, n := range s.Nodes {
		rt := lsm.LER
		if n.Type == "lsr" {
			rt = lsm.LSR
		}
		nodes = append(nodes, router.NodeSpec{
			Name:       n.Name,
			Hardware:   n.Plane == "hardware",
			RouterType: rt,
		})
	}
	var links []router.LinkSpec
	for _, l := range s.Links {
		spec := router.LinkSpec{
			A: l.A, B: l.B,
			RateBPS:   l.RateMbps * 1e6,
			Delay:     l.DelayMs / 1e3,
			QueueCap:  l.QueueCap,
			Metric:    l.Metric,
			Transport: l.Transport,
			Coalesce:  l.Coalesce,
			SysBatch:  l.SysBatch,
		}
		switch l.Queue {
		case "priority":
			spec.NewQueue = func(c int) qos.Scheduler { return qos.NewPriority(c) }
		case "wrr":
			spec.NewQueue = func(c int) qos.Scheduler {
				return qos.NewWRR(c, [qos.NumClasses]int{1, 1, 1, 1, 2, 2, 4, 4})
			}
		}
		links = append(links, spec)
	}
	return nodes, links
}

// build does the full in-process construction; with local set, traffic
// generators are installed only for flows originating at that node (the
// others belong to their own processes).
func (s *Scenario) build(local string) (*Built, error) {
	nodes, links := s.specs()
	net, err := router.Build(nodes, links)
	if err != nil {
		return nil, err
	}

	for _, tn := range s.Tunnels {
		if _, err := net.LDP.SetupTunnel(tn.ID, tn.Path, tn.BandwidthMbps*1e6); err != nil {
			return nil, fmt.Errorf("config: tunnel %q: %w", tn.ID, err)
		}
	}

	egressSet := map[string]bool{}
	for _, l := range s.LSPs {
		dst, err := ParseAddr(l.Dst)
		if err != nil {
			return nil, err
		}
		path := l.Path
		if len(path) == 0 {
			path, err = net.Topo.CSPF(te.PathRequest{
				From: l.From, To: l.To, BandwidthBPS: l.BandwidthMbps * 1e6,
			})
			if err != nil {
				return nil, fmt.Errorf("config: LSP %q: %w", l.ID, err)
			}
		}
		plen := l.PrefixLen
		if plen == 0 {
			plen = 32
		}
		if _, err := net.LDP.SetupLSP(ldp.SetupRequest{
			ID:        l.ID,
			FEC:       ldp.FEC{Dst: dst, PrefixLen: plen},
			Path:      path,
			Bandwidth: l.BandwidthMbps * 1e6,
			CoS:       label.CoS(l.CoS),
			PHP:       l.PHP,
		}); err != nil {
			return nil, fmt.Errorf("config: LSP %q: %w", l.ID, err)
		}
		egressSet[path[len(path)-1]] = true
	}

	collector := trafficgen.NewCollector(net.Sim)
	var egresses []string
	for name := range egressSet {
		collector.Attach(net.Router(name))
		egresses = append(egresses, name)
	}

	for _, f := range s.Flows {
		if local != "" && f.From != local {
			continue
		}
		gen, err := s.generator(f)
		if err != nil {
			return nil, err
		}
		gen.Install(net.Sim, net.Router(f.From), collector)
	}
	return &Built{Scenario: s, Net: net, Collector: collector, Egresses: egresses}, nil
}

// BuildNode constructs the scenario for one process of a distributed
// run, peer-scoped: only the named router is instantiated, with UDP
// transport links dialled to its actual neighbours and one listening
// socket for arrivals. The full topology exists only as TE metadata
// (path computation needs the graph); there are no ghost routers and no
// precomputed label tables. A signaling speaker runs LDP-style sessions
// to the neighbours, and every LSP whose ingress is this node is
// signalled through it — label bindings for transit and egress roles
// arrive over the wire from peers. Tunnels are not supported in
// distributed mode (use BuildNodeGhost for the legacy behaviour). Only
// flows originating at the node are installed. Drive the result with
// Net.RunReal, and Close the network when done.
func (s *Scenario) BuildNode(name string) (*Built, error) {
	if s.Transport == nil {
		return nil, fmt.Errorf("%w: scenario has no transport section", ErrValidation)
	}
	laddr, ok := s.Transport.Nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: transport section has no address for node %q", ErrValidation, name)
	}
	if len(s.Tunnels) > 0 {
		return nil, fmt.Errorf("%w: tunnels are not supported in distributed mode", ErrValidation)
	}
	nodes, links := s.specs()
	// transport.shards upgrades the local software plane to the
	// concurrent engine, one worker per listener shard, so the kernel's
	// SO_REUSEPORT hash demultiplexes straight into pinned shard queues.
	pumped := false
	if s.Transport.Shards > 1 {
		for i := range nodes {
			if nodes[i].Name == name && !nodes[i].Hardware {
				nodes[i].EngineWorkers = s.Transport.Shards
				pumped = true
			}
		}
	}
	net, err := router.BuildLocal(nodes, links, name)
	if err != nil {
		return nil, err
	}
	b := &Built{
		Scenario:  s,
		Net:       net,
		LocalNode: name,
		Events:    &telemetry.EventCounters{},
		Drops:     &telemetry.DropCounters{},
		Registry:  telemetry.NewRegistry(),
	}
	net.SetTelemetry(telemetry.Sink{Drops: b.Drops})

	// The datagram's source-node id indexes the scenario's node order —
	// the same table in every process, shared by transport framing and
	// signaling.
	names := make([]string, len(s.Nodes))
	ids := make(map[string]transport.NodeID, len(s.Nodes))
	for i, n := range s.Nodes {
		names[i] = n.Name
		ids[n.Name] = transport.NodeID(i)
	}
	// The admission guard must be armed before the socket opens so no
	// unguarded window exists. Its checks run on socket goroutines ahead
	// of the network lock, so it keeps its default wall clock — never
	// the simulator's.
	if g := s.Guard; g != nil {
		def := g.policy()
		gopts := []guard.Option{
			guard.WithDefaultPolicy(def),
			guard.WithControlFlows(signaling.FlowID, resilience.ProbeFlowID),
			guard.WithDropFunc(net.Drop),
			guard.WithEvents(b.Events),
		}
		for _, gl := range g.Links {
			if gl.Node != name {
				continue
			}
			gopts = append(gopts, guard.WithLinkPolicy(gl.Peer, gl.policy(def)))
		}
		b.Guard = guard.New(gopts...)
		net.SetGuard(b.Guard)
	}
	b.registerMetrics(name)

	base := append(net.TransportOptions(), s.Transport.options()...)
	lopts := append(append([]transport.Option{}, base...), transport.WithNames(names))
	var rcv io.Closer
	if pumped {
		// The egress pump attaches before the listener opens so the first
		// arrival already finds the batch path armed end to end.
		if err := net.AttachEgressPump(name); err != nil {
			net.Close()
			return nil, fmt.Errorf("config: node %s: %w", name, err)
		}
		rcv, err = transport.ListenSharded(laddr, s.Transport.Shards,
			func(i int) func(batch []transport.Inbound) { return net.FeedTo(name, i) }, lopts...)
	} else {
		rcv, err = transport.Listen(laddr, net.DeliverTo(name), lopts...)
	}
	if err != nil {
		net.Close()
		return nil, fmt.Errorf("config: node %s: %w", name, err)
	}
	net.Manage(rcv)

	// From here on inbound datagrams may arrive concurrently; the rest
	// of construction mutates router and speaker state, so it runs
	// under the network lock like any delivery. Close must wait until
	// the lock is released — receivers drain their final batch through
	// the same lock.
	locked := func() error {
		local := net.Router(name)
		for _, l := range s.Links {
			var nb string
			switch name {
			case l.A:
				nb = l.B
			case l.B:
				nb = l.A
			default:
				continue
			}
			raddr, ok := s.Transport.Nodes[nb]
			if !ok {
				return fmt.Errorf("%w: transport section has no address for neighbour %q of %q", ErrValidation, nb, name)
			}
			w, err := transport.Dial(name, nb, raddr,
				append(append([]transport.Option{}, base...), transport.WithSource(ids[name]))...)
			if err != nil {
				return fmt.Errorf("config: node %s: %w", name, err)
			}
			local.AttachLink(w)
			net.Manage(w)
		}

		// Hostile-wire hardening: dead sessions redial through paced
		// exponential backoff instead of hot hello loops, keepalives
		// stretch under control-plane load, and flapping links are
		// damped out of protection CSPF until they calm down.
		seed := fnv.New64a()
		seed.Write([]byte(name))
		sigOpts := []signaling.Option{
			signaling.WithEvents(b.Events),
			signaling.WithMaintenance(0.5),
			signaling.WithAdaptiveKeepalive(500),
			signaling.WithRestartPolicy(resilience.NewRetryer(net.Sim,
				resilience.Backoff{Base: 0.1, Max: 2, MaxAttempts: 30},
				int64(seed.Sum64()), b.Events, nil)),
		}
		if b.Guard != nil {
			sigOpts = append(sigOpts, signaling.WithGuard(b.Guard))
		}
		sp, err := signaling.New(local, net.Topo, net.Sim, names, name, sigOpts...)
		if err != nil {
			return fmt.Errorf("config: node %s: %w", name, err)
		}
		resilience.BindDamping(sp, resilience.NewDamper(net.Sim, resilience.DamperConfig{}, b.Events))
		sp.Start()
		b.Speaker = sp

		// Egresses come from LSP metadata; the collector only attaches
		// locally. LSPs starting here are signalled; the rest of each
		// path materialises via the speakers of the other processes.
		b.Collector = trafficgen.NewCollector(net.Sim)
		egressSet := map[string]bool{}
		for _, l := range s.LSPs {
			dst, err := ParseAddr(l.Dst)
			if err != nil {
				return err
			}
			path := l.Path
			if len(path) == 0 {
				path, err = net.Topo.CSPF(te.PathRequest{
					From: l.From, To: l.To, BandwidthBPS: l.BandwidthMbps * 1e6,
				})
				if err != nil {
					return fmt.Errorf("config: LSP %q: %w", l.ID, err)
				}
			}
			egressSet[path[len(path)-1]] = true
			if path[len(path)-1] == name {
				// The egress delivers the FEC's traffic locally.
				local.AddLocal(dst)
			}
			if path[0] != name {
				continue
			}
			plen := l.PrefixLen
			if plen == 0 {
				plen = 32
			}
			if err := sp.Setup(ldp.SetupRequest{
				ID:        l.ID,
				FEC:       ldp.FEC{Dst: dst, PrefixLen: plen},
				Path:      path,
				Bandwidth: l.BandwidthMbps * 1e6,
				CoS:       label.CoS(l.CoS),
				PHP:       l.PHP,
			}, nil); err != nil {
				return fmt.Errorf("config: LSP %q: %w", l.ID, err)
			}
		}
		for n := range egressSet {
			b.Egresses = append(b.Egresses, n)
		}
		sort.Strings(b.Egresses)
		if egressSet[name] {
			b.Collector.Attach(local)
		}
		for _, f := range s.Flows {
			if f.From != name {
				continue
			}
			gen, err := s.generator(f)
			if err != nil {
				return err
			}
			gen.Install(net.Sim, local, b.Collector)
		}
		return nil
	}
	net.Lock()
	err = locked()
	net.Unlock()
	if err != nil {
		net.Close()
		return nil, err
	}
	return b, nil
}

// BuildNodeGhost is the legacy distributed construction: the full
// topology is built in-process — identical construction order on every
// process, so the in-process LDP manager's label allocation agrees
// everywhere — and the named router's links are then replaced with UDP
// transport links. The rest of the topology stays as an inert ghost
// that never sees a packet. It exists for simulation-parity experiments
// only; BuildNode is the real distributed path, where label bindings
// travel over the wire instead of being assumed.
func (s *Scenario) BuildNodeGhost(name string) (*Built, error) {
	if s.Transport == nil {
		return nil, fmt.Errorf("%w: scenario has no transport section", ErrValidation)
	}
	laddr, ok := s.Transport.Nodes[name]
	if !ok {
		return nil, fmt.Errorf("%w: transport section has no address for node %q", ErrValidation, name)
	}
	b, err := s.build(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(s.Nodes))
	ids := make(map[string]transport.NodeID, len(s.Nodes))
	for i, n := range s.Nodes {
		names[i] = n.Name
		ids[n.Name] = transport.NodeID(i)
	}
	base := append(b.Net.TransportOptions(), s.Transport.options()...)
	rcv, err := transport.Listen(laddr, b.Net.DeliverTo(name),
		append(append([]transport.Option{}, base...), transport.WithNames(names))...)
	if err != nil {
		b.Net.Close()
		return nil, fmt.Errorf("config: node %s: %w", name, err)
	}
	b.Net.Manage(rcv)
	local := b.Net.Router(name)
	for _, w := range local.Links() {
		nb := w.To()
		raddr, ok := s.Transport.Nodes[nb]
		if !ok {
			b.Net.Close()
			return nil, fmt.Errorf("%w: transport section has no address for neighbour %q of %q", ErrValidation, nb, name)
		}
		l, err := transport.Dial(name, nb, raddr,
			append(append([]transport.Option{}, base...), transport.WithSource(ids[name]))...)
		if err != nil {
			b.Net.Close()
			return nil, fmt.Errorf("config: node %s: %w", name, err)
		}
		local.AttachLink(l)
		b.Net.Manage(l)
	}
	b.LocalNode = name
	return b, nil
}

func (s *Scenario) generator(f Flow) (trafficgen.Generator, error) {
	dst, err := ParseAddr(f.Dst)
	if err != nil {
		return nil, err
	}
	flow := trafficgen.Flow{ID: f.ID, Dst: dst}
	stop := f.StopS
	if stop == 0 {
		stop = s.DurationS
	}
	if stop <= f.StartS {
		return nil, fmt.Errorf("%w: flow %d stops (%gs) before it starts (%gs)", ErrValidation, f.ID, stop, f.StartS)
	}
	size := f.SizeBytes
	if size == 0 {
		size = 512
	}
	switch f.Kind {
	case "voip":
		return trafficgen.VoIP(flow, f.StartS, stop), nil
	case "cbr":
		if f.IntervalMs <= 0 {
			return nil, fmt.Errorf("%w: cbr flow %d needs interval_ms", ErrValidation, f.ID)
		}
		return trafficgen.CBR{Flow: flow, Size: size, Interval: f.IntervalMs / 1e3, Start: f.StartS, Stop: stop}, nil
	case "bulk":
		if f.RateMbps <= 0 {
			return nil, fmt.Errorf("%w: bulk flow %d needs rate_mbps", ErrValidation, f.ID)
		}
		return trafficgen.Bulk{Flow: flow, Size: size, RateBPS: f.RateMbps * 1e6, Start: f.StartS, Stop: stop}, nil
	case "poisson":
		if f.RatePPS <= 0 {
			return nil, fmt.Errorf("%w: poisson flow %d needs rate_pps", ErrValidation, f.ID)
		}
		return trafficgen.Poisson{Flow: flow, Size: size, RatePPS: f.RatePPS, Start: f.StartS, Stop: stop, Seed: f.Seed}, nil
	case "onoff":
		if f.RateMbps <= 0 || f.OnMs <= 0 {
			return nil, fmt.Errorf("%w: onoff flow %d needs rate_mbps and on_ms", ErrValidation, f.ID)
		}
		return trafficgen.OnOff{
			Flow: flow, Size: size, PeakBPS: f.RateMbps * 1e6,
			On: f.OnMs / 1e3, Off: f.OffMs / 1e3, Start: f.StartS, Stop: stop,
		}, nil
	default:
		return nil, fmt.Errorf("%w: flow %d kind %q", ErrValidation, f.ID, f.Kind)
	}
}

// Run executes the scenario until the event queue drains and returns the
// simulated end time.
func (b *Built) Run() netsim.Time {
	b.Net.Sim.Run()
	return b.Net.Sim.Now()
}

// registerMetrics populates the node's Registry with every mpls_*
// series the management plane exposes via telemetry.scrape. Counter
// values are read through callbacks at scrape time; the speaker's plain
// counters are only read under the network lock, which the scrape
// handler holds.
func (b *Built) registerMetrics(name string) {
	reg, labels := b.Registry, telemetry.Labels{"node": name}
	reg.Drops("mpls_node_drops_total",
		"Packets dropped by this node, by reason (forwarding, wire decode, admission).",
		labels, b.Drops)
	reg.Events("mpls_events_total",
		"Control-plane fault and recovery events on this node.",
		labels, b.Events)
	b.Net.Wire.Register(reg, labels)
	if b.Guard != nil {
		b.Guard.RegisterMetrics(reg, name)
	}
	reg.Gauge("mpls_sim_time_seconds", "Node clock (wall-tracking in distributed mode).",
		labels, func() float64 { return float64(b.Net.Sim.Now()) })
	speakerCounter := func(read func(*signaling.Speaker) uint64) func() uint64 {
		return func() uint64 {
			if b.Speaker == nil {
				return 0
			}
			return read(b.Speaker)
		}
	}
	reg.Counter("mpls_signaling_tx_total", "Signaling messages sent.",
		labels, speakerCounter(func(sp *signaling.Speaker) uint64 { return sp.Stats.Tx }))
	reg.Counter("mpls_signaling_rx_total", "Signaling messages received and decoded.",
		labels, speakerCounter(func(sp *signaling.Speaker) uint64 { return sp.Stats.Rx }))
	reg.Counter("mpls_signaling_map_rx_total", "Label mappings received.",
		labels, speakerCounter(func(sp *signaling.Speaker) uint64 { return sp.Stats.MapRx }))
	reg.Counter("mpls_signaling_withdraw_rx_total", "Label withdraws received.",
		labels, speakerCounter(func(sp *signaling.Speaker) uint64 { return sp.Stats.WithdrawRx }))
}
