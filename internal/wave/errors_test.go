package wave

import (
	"errors"
	"testing"
	"time"

	"embeddedmpls/internal/rtl"
)

// failWriter errors after n successful writes — renderers must propagate
// output errors instead of silently truncating artifacts.
type failWriter struct{ left int }

var errSink = errors.New("sink full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errSink
	}
	w.left--
	return len(p), nil
}

func TestRenderersPropagateWriteErrors(t *testing.T) {
	sim := rtl.New()
	q := sim.Signal("count", 4)
	en := sim.Signal("en", 1)
	rtl.NewCounter(sim, q, en, nil, nil, nil, nil)
	en.SetBool(true)
	tr := NewTracer(sim, q, en)
	sim.Run(4)

	renders := map[string]func(w *failWriter) error{
		"table": func(w *failWriter) error { return tr.WriteTable(w) },
		"wave":  func(w *failWriter) error { return tr.WriteWave(w) },
		"vcd":   func(w *failWriter) error { return tr.WriteVCD(w, "m", time.Time{}) },
	}
	for name, render := range renders {
		// Fail at every possible position and demand the error surfaces.
		for budget := 0; budget < 24; budget++ {
			err := render(&failWriter{left: budget})
			if err == nil {
				// Once the budget exceeds the full output, success is
				// correct; verify by rendering fully once.
				if render(&failWriter{left: 1 << 20}) != nil {
					t.Errorf("%s: full render failed", name)
				}
				break
			}
			if !errors.Is(err, errSink) {
				t.Fatalf("%s budget %d: unexpected error %v", name, budget, err)
			}
		}
	}
}

func TestVCDHeaderWithTimestamp(t *testing.T) {
	sim := rtl.New()
	s := sim.Signal("s", 1)
	tr := NewTracer(sim, s)
	sim.Run(1)
	w := &captureWriter{}
	ts := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	if err := tr.WriteVCD(w, "", ts); err != nil {
		t.Fatal(err)
	}
	out := string(w.buf)
	if !contains(out, "scope module trace") {
		t.Error("empty module name did not default to trace")
	}
	if !contains(out, "2026") {
		t.Error("timestamp missing from header")
	}
}

type captureWriter struct{ buf []byte }

func (w *captureWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
