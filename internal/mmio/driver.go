package mmio

import (
	"errors"
	"fmt"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/lsm"
)

// Driver is the firmware side of the hardware/software split: it
// implements the modifier's operations using only Bus reads and writes —
// load the operand registers, set the go bit, poll the sticky done flag,
// read the results, acknowledge.
type Driver struct {
	bus Bus
	// PollLimit bounds status polls per operation; exceeded means the
	// hardware wedged.
	PollLimit int
}

// Driver errors.
var (
	ErrTimeout = errors.New("mmio: device did not complete")
)

// NewDriver wraps a bus.
func NewDriver(bus Bus) *Driver {
	return &Driver{bus: bus, PollLimit: 8192}
}

// exec arms a command and polls to completion, returning the final
// status word.
func (d *Driver) exec(ctrl uint32) (uint32, error) {
	if err := d.bus.Write(RegCtrl, ctrl); err != nil {
		return 0, err
	}
	for i := 0; i < d.PollLimit; i++ {
		st, err := d.bus.Read(RegStatus)
		if err != nil {
			return 0, err
		}
		if st&StatusDone != 0 {
			// Drop the go bit; the sticky bits stay readable until the
			// next command clears them.
			if err := d.bus.Write(RegCtrl, 0); err != nil {
				return 0, err
			}
			return st, nil
		}
	}
	_ = d.bus.Write(RegCtrl, 0)
	return 0, fmt.Errorf("%w after %d polls", ErrTimeout, d.PollLimit)
}

// Reset pulses the architecture reset.
func (d *Driver) Reset() error {
	_, err := d.exec(CtrlReset)
	return err
}

// Push loads one entry onto the stack.
func (d *Driver) Push(e label.Entry) error {
	w, err := e.Pack()
	if err != nil {
		return err
	}
	if err := d.bus.Write(RegDataIn, w); err != nil {
		return err
	}
	_, err = d.exec(CtrlGo | uint32(lsm.CmdUserPush))
	return err
}

// Pop removes the top entry, returning it.
func (d *Driver) Pop() (label.Entry, error) {
	size, err := d.bus.Read(RegStackSize)
	if err != nil {
		return label.Entry{}, err
	}
	if size == 0 {
		return label.Entry{}, label.ErrStackEmpty
	}
	top, err := d.bus.Read(RegStackTop)
	if err != nil {
		return label.Entry{}, err
	}
	if _, err := d.exec(CtrlGo | uint32(lsm.CmdUserPop)); err != nil {
		return label.Entry{}, err
	}
	return label.Unpack(top), nil
}

// WritePair stores an information base entry.
func (d *Driver) WritePair(lv infobase.Level, p infobase.Pair) error {
	if err := infobase.ValidatePair(lv, p); err != nil {
		return err
	}
	writes := map[uint32]uint32{
		RegLevel:       uint32(lv),
		RegNewLabel:    uint32(p.NewLabel),
		RegOperationIn: uint32(p.Op),
	}
	if lv == infobase.Level1 {
		writes[RegPacketID] = uint32(p.Index)
	} else {
		writes[RegOldLabel] = uint32(p.Index)
	}
	for addr, v := range writes {
		if err := d.bus.Write(addr, v); err != nil {
			return err
		}
	}
	_, err := d.exec(CtrlGo | uint32(lsm.CmdWritePair))
	return err
}

// Lookup searches a level directly.
func (d *Driver) Lookup(lv infobase.Level, key infobase.Key) (label.Label, label.Op, bool, error) {
	if err := d.bus.Write(RegLevel, uint32(lv)); err != nil {
		return 0, 0, false, err
	}
	reg := RegLabelLookup
	if lv == infobase.Level1 {
		reg = RegPacketID
	}
	if err := d.bus.Write(reg, uint32(key)); err != nil {
		return 0, 0, false, err
	}
	st, err := d.exec(CtrlGo | uint32(lsm.CmdLookup))
	if err != nil {
		return 0, 0, false, err
	}
	if st&StatusFound == 0 {
		return 0, label.OpNone, false, nil
	}
	lbl, err := d.bus.Read(RegLabelOut)
	if err != nil {
		return 0, 0, false, err
	}
	op, err := d.bus.Read(RegOperationOu)
	if err != nil {
		return 0, 0, false, err
	}
	return label.Label(lbl), label.Op(op), true, nil
}

// ReadPair reads the information base entry at address i of level lv
// through the management read-out command.
func (d *Driver) ReadPair(lv infobase.Level, i int) (infobase.Pair, error) {
	if err := d.bus.Write(RegLevel, uint32(lv)); err != nil {
		return infobase.Pair{}, err
	}
	if err := d.bus.Write(RegDataIn, uint32(i)); err != nil {
		return infobase.Pair{}, err
	}
	if _, err := d.exec(CtrlGo | uint32(lsm.CmdReadPair)); err != nil {
		return infobase.Pair{}, err
	}
	idx, err := d.bus.Read(RegIndexOut)
	if err != nil {
		return infobase.Pair{}, err
	}
	lbl, err := d.bus.Read(RegLabelOut)
	if err != nil {
		return infobase.Pair{}, err
	}
	op, err := d.bus.Read(RegOperationOu)
	if err != nil {
		return infobase.Pair{}, err
	}
	return infobase.Pair{Index: infobase.Key(idx), NewLabel: label.Label(lbl), Op: label.Op(op)}, nil
}

// DumpLevel reads back every pair stored at a level through the
// management read-out path — how operational software audits the
// hardware's view of its configuration.
func (d *Driver) DumpLevel(lv infobase.Level) ([]infobase.Pair, error) {
	if err := d.bus.Write(RegLevel, uint32(lv)); err != nil {
		return nil, err
	}
	n, err := d.bus.Read(RegWriteCount)
	if err != nil {
		return nil, err
	}
	out := make([]infobase.Pair, 0, n)
	for i := 0; i < int(n); i++ {
		p, err := d.ReadPair(lv, i)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Update runs the packet-driven stack update; it reports whether the
// packet was discarded.
func (d *Driver) Update(packetID uint32, ttlIn uint8, cosIn label.CoS) (bool, error) {
	for addr, v := range map[uint32]uint32{
		RegPacketID: packetID,
		RegTTLIn:    uint32(ttlIn),
		RegCoSIn:    uint32(cosIn),
	} {
		if err := d.bus.Write(addr, v); err != nil {
			return false, err
		}
	}
	st, err := d.exec(CtrlGo | uint32(lsm.CmdUpdate))
	if err != nil {
		return false, err
	}
	return st&StatusDiscard != 0, nil
}

// Stack reads the whole stack back, destructively (pop by pop), the way
// an egress interface in software would.
func (d *Driver) Stack() (*label.Stack, error) {
	var topFirst []label.Entry
	for {
		size, err := d.bus.Read(RegStackSize)
		if err != nil {
			return nil, err
		}
		if size == 0 {
			break
		}
		e, err := d.Pop()
		if err != nil {
			return nil, err
		}
		topFirst = append(topFirst, e)
	}
	out := &label.Stack{}
	for i := len(topFirst) - 1; i >= 0; i-- {
		if err := out.Push(topFirst[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
