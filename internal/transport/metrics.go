package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"embeddedmpls/internal/telemetry"
)

// Metrics is the per-link (or per-node, when shared) accounting of the
// transport plane. All counters are atomic, so links and receivers
// update them from their own goroutines while a registry scrapes.
type Metrics struct {
	// TxPackets/TxBytes count datagrams written to the socket;
	// TxErrors counts failed socket writes; TxLost counts packets
	// discarded before the socket (link down or closed, fault verdict).
	TxPackets atomic.Uint64
	TxBytes   atomic.Uint64
	TxErrors  atomic.Uint64
	TxLost    atomic.Uint64
	// EncodeErrors counts packets the codec refused to encode.
	EncodeErrors atomic.Uint64
	// RxPackets/RxBytes count datagrams that decoded to packets.
	RxPackets atomic.Uint64
	RxBytes   atomic.Uint64
	// DecodeErrors counts datagrams that failed to decode; ShortReads
	// is the subset that were truncated rather than corrupted.
	DecodeErrors atomic.Uint64
	ShortReads   atomic.Uint64
}

// bufPool recycles encode buffers so steady-state sends allocate
// nothing. Buffers that had to grow past MaxDatagram are pooled at
// their grown size — a node forwarding jumbo payloads settles at the
// larger size instead of reallocating per packet.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxDatagram)
		return &b
	},
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// Register wires the metrics into a telemetry registry under
// mpls_transport_* series with the given labels (typically
// {"node": ..., "link": ...}). Values are read live at scrape time.
func (m *Metrics) Register(reg *telemetry.Registry, labels telemetry.Labels) {
	counter := func(name, help string, v *atomic.Uint64) {
		reg.Counter(name, help, labels, v.Load)
	}
	counter("mpls_transport_tx_packets_total", "Datagrams written to transport sockets.", &m.TxPackets)
	counter("mpls_transport_tx_bytes_total", "Bytes written to transport sockets.", &m.TxBytes)
	counter("mpls_transport_tx_errors_total", "Failed transport socket writes.", &m.TxErrors)
	counter("mpls_transport_lost_packets_total", "Packets discarded before the socket (link down, closed, or fault).", &m.TxLost)
	counter("mpls_transport_encode_errors_total", "Packets the wire codec refused to encode.", &m.EncodeErrors)
	counter("mpls_transport_rx_packets_total", "Datagrams decoded to packets.", &m.RxPackets)
	counter("mpls_transport_rx_bytes_total", "Bytes received on transport sockets.", &m.RxBytes)
	counter("mpls_transport_decode_errors_total", "Datagrams that failed to decode (wire-decode drops).", &m.DecodeErrors)
	counter("mpls_transport_short_reads_total", "Decode failures caused by truncated datagrams.", &m.ShortReads)
}

// String summarises the counters for logs.
func (m *Metrics) String() string {
	return fmt.Sprintf("transport{tx=%d/%dB txerr=%d lost=%d rx=%d/%dB decerr=%d short=%d}",
		m.TxPackets.Load(), m.TxBytes.Load(), m.TxErrors.Load(), m.TxLost.Load(),
		m.RxPackets.Load(), m.RxBytes.Load(), m.DecodeErrors.Load(), m.ShortReads.Load())
}
