// Package iproute implements conventional hop-by-hop IP routing — the
// "traditional IP forwarding" baseline that MPLS label switching
// replaces. Each router holds a longest-prefix-match table mapping
// destination prefixes to next-hop neighbours; tables are computed from
// the link-state topology with per-node Dijkstra, the way an IGP
// (OSPF-style) would. Routers fall back to these tables for unlabelled
// packets with no FEC binding, so an MPLS network degrades gracefully to
// IP and a pure-IP network needs no MPLS state at all.
package iproute

import (
	"fmt"

	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/te"
)

// Local is the next-hop value marking a destination attached to this
// router (deliver instead of forwarding).
const Local = ""

// Table is one router's IP forwarding table: longest prefix match over
// (prefix -> next-hop node name).
type Table struct {
	byLen [33]map[packet.Addr]string
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Add binds prefix/plen to the given next hop (Local for attached
// prefixes).
func (t *Table) Add(prefix packet.Addr, plen int, nexthop string) error {
	if plen < 0 || plen > 32 {
		return fmt.Errorf("iproute: prefix length %d", plen)
	}
	if t.byLen[plen] == nil {
		t.byLen[plen] = make(map[packet.Addr]string)
	}
	t.byLen[plen][mask(prefix, plen)] = nexthop
	return nil
}

// Lookup returns the next hop for addr under longest-prefix match.
func (t *Table) Lookup(addr packet.Addr) (string, bool) {
	for plen := 32; plen >= 0; plen-- {
		if m := t.byLen[plen]; m != nil {
			if nh, ok := m[mask(addr, plen)]; ok {
				return nh, true
			}
		}
	}
	return "", false
}

// Size returns the number of installed prefixes.
func (t *Table) Size() int {
	n := 0
	for _, m := range t.byLen {
		n += len(m)
	}
	return n
}

func mask(a packet.Addr, plen int) packet.Addr {
	if plen <= 0 {
		return 0
	}
	return a &^ (1<<(32-plen) - 1)
}

// PrefixOwner declares that a prefix is attached to a node.
type PrefixOwner struct {
	Prefix packet.Addr
	Len    int
	Node   string
}

// BuildTables computes every router's forwarding table: single-source
// shortest paths (by the TE metric) from each node, then one route per
// owned prefix. Owners attached to the node itself get Local routes.
func BuildTables(topo *te.Topology, owners []PrefixOwner) (map[string]*Table, error) {
	nodes := topo.Nodes()
	known := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		known[n] = true
	}
	for _, o := range owners {
		if !known[o.Node] {
			return nil, fmt.Errorf("iproute: prefix owner %q not in topology", o.Node)
		}
	}
	tables := make(map[string]*Table, len(nodes))
	for _, src := range nodes {
		next := nextHops(topo, src)
		t := NewTable()
		for _, o := range owners {
			nh := Local
			if o.Node != src {
				var ok bool
				nh, ok = next[o.Node]
				if !ok {
					continue // unreachable: leave no route, packets drop
				}
			}
			if err := t.Add(o.Prefix, o.Len, nh); err != nil {
				return nil, err
			}
		}
		tables[src] = t
	}
	return tables, nil
}

// nextHops runs Dijkstra from src and returns, for every reachable node,
// the neighbour of src on the shortest path. Ties break toward the
// lexicographically smaller neighbour for determinism.
func nextHops(topo *te.Topology, src string) map[string]string {
	type state struct {
		cost  float64
		first string // first hop out of src
		done  bool
	}
	states := map[string]*state{src: {}}
	for {
		var cur string
		var cs *state
		for n, s := range states {
			if s.done {
				continue
			}
			if cs == nil || s.cost < cs.cost || (s.cost == cs.cost && n < cur) {
				cur, cs = n, s
			}
		}
		if cs == nil {
			break
		}
		cs.done = true
		for _, nb := range topo.Neighbours(cur) {
			attrs, _ := topo.Link(cur, nb)
			m := attrs.Metric
			if m <= 0 {
				m = 1
			}
			first := cs.first
			if cur == src {
				first = nb
			}
			cand := state{cost: cs.cost + m, first: first}
			nxt := states[nb]
			if nxt == nil {
				c := cand
				states[nb] = &c
				continue
			}
			if nxt.done {
				continue
			}
			if cand.cost < nxt.cost || (cand.cost == nxt.cost && cand.first < nxt.first) {
				*nxt = cand
			}
		}
	}
	out := make(map[string]string, len(states))
	for n, s := range states {
		if n != src {
			out[n] = s.first
		}
	}
	return out
}
