package telemetry

import (
	"fmt"
	"sync/atomic"
)

// Event classifies a fault or recovery action taken outside the
// forwarding fast path: the control-plane side of the drop taxonomy.
// Where Reason says why a packet died, Event says what the fault
// injection and self-healing layers did about the conditions that kill
// packets.
type Event uint8

// The fault/recovery events.
const (
	// EventLinkFlap: a link transitioned down (injected by the fault
	// layer or detected by the liveness monitor).
	EventLinkFlap Event = iota
	// EventKeepaliveMiss: a liveness probe interval elapsed without the
	// probe arriving.
	EventKeepaliveMiss
	// EventProtectionSwitch: an LSP was moved onto its backup path
	// (make-before-break reroute committed).
	EventProtectionSwitch
	// EventRetryAttempt: a failed control-plane operation was retried
	// after backoff.
	EventRetryAttempt
	// EventRetryExhausted: a retried operation ran out of attempts and
	// was abandoned.
	EventRetryExhausted
	// EventSessionUp: a signaling session reached the operational state.
	EventSessionUp
	// EventSessionDown: an operational signaling session was torn down
	// (dead-timer expiry, forced sever or close).
	EventSessionDown
	// EventLabelMapRx: a LABEL MAPPING message was received and its
	// binding installed.
	EventLabelMapRx
	// EventLabelWithdrawRx: a LABEL WITHDRAW message was received and
	// the binding removed.
	EventLabelWithdrawRx
	// EventQuarantineTrip: an ingress guard's per-peer circuit breaker
	// opened after a burst of malformed datagrams.
	EventQuarantineTrip
	// EventQuarantineClear: a tripped circuit breaker's hold expired and
	// the peer was readmitted.
	EventQuarantineClear
	// EventLinkSuppressed: flap damping accumulated enough penalty to
	// exclude a link from path computation.
	EventLinkSuppressed
	// EventLinkReused: a suppressed link's penalty decayed below the
	// reuse threshold and it became eligible for paths again.
	EventLinkReused

	// NumEvents is the number of distinct events.
	NumEvents = 13
)

// Valid reports whether e names a defined event.
func (e Event) Valid() bool { return e < NumEvents }

// String names the event; the same strings appear as the exporter's
// event label values.
func (e Event) String() string {
	switch e {
	case EventLinkFlap:
		return "link_flap"
	case EventKeepaliveMiss:
		return "keepalive_miss"
	case EventProtectionSwitch:
		return "protection_switch"
	case EventRetryAttempt:
		return "retry_attempt"
	case EventRetryExhausted:
		return "retry_exhausted"
	case EventSessionUp:
		return "session_up"
	case EventSessionDown:
		return "session_down"
	case EventLabelMapRx:
		return "label_map_rx"
	case EventLabelWithdrawRx:
		return "label_withdraw_rx"
	case EventQuarantineTrip:
		return "quarantine_trip"
	case EventQuarantineClear:
		return "quarantine_clear"
	case EventLinkSuppressed:
		return "link_suppressed"
	case EventLinkReused:
		return "link_reused"
	default:
		return fmt.Sprintf("event(%d)", uint8(e))
	}
}

// EventCounters is a fixed set of per-event counters, the recovery-side
// sibling of DropCounters. All methods are safe for concurrent use and
// lock-free. The zero value is ready to use.
type EventCounters struct {
	counts [NumEvents]atomic.Uint64
}

// Inc adds one occurrence of the event. Out-of-range events are ignored.
func (c *EventCounters) Inc(e Event) { c.Add(e, 1) }

// Add adds n occurrences of the event.
func (c *EventCounters) Add(e Event, n uint64) {
	if e.Valid() {
		c.counts[e].Add(n)
	}
}

// Get returns the count for one event.
func (c *EventCounters) Get(e Event) uint64 {
	if !e.Valid() {
		return 0
	}
	return c.counts[e].Load()
}

// Total returns the sum over all events.
func (c *EventCounters) Total() uint64 {
	var t uint64
	for i := range c.counts {
		t += c.counts[i].Load()
	}
	return t
}

// Snapshot returns an atomic-per-counter copy of all counts.
func (c *EventCounters) Snapshot() [NumEvents]uint64 {
	var out [NumEvents]uint64
	for i := range c.counts {
		out[i] = c.counts[i].Load()
	}
	return out
}

// Merge folds o's counts into c.
func (c *EventCounters) Merge(o *EventCounters) {
	if o == nil {
		return
	}
	for i := range c.counts {
		c.counts[i].Add(o.counts[i].Load())
	}
}

// String renders every event, zero or not, in enum order.
func (c *EventCounters) String() string {
	s := "events{"
	for e := Event(0); e < NumEvents; e++ {
		if e > 0 {
			s += " "
		}
		s += fmt.Sprintf("%v=%d", e, c.Get(e))
	}
	return s + "}"
}

// Events registers one counter series per fault/recovery event, labelled
// event="<name>" on top of the given labels — the recovery-side sibling
// of Drops.
func (r *Registry) Events(name, help string, labels Labels, c *EventCounters) {
	for ev := Event(0); ev < NumEvents; ev++ {
		ev := ev
		with := Labels{"event": ev.String()}
		for k, v := range labels {
			with[k] = v
		}
		r.Counter(name, help, with, func() uint64 { return c.Get(ev) })
	}
}
