package lsm

import (
	"math/rand"
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
	"embeddedmpls/internal/telemetry"
)

// TestHWMatchesBehavioralRandomOps drives the cycle-accurate hardware and
// the behavioral reference with the same random operation stream and
// demands identical stacks, lookup answers, update outcomes and — via the
// cost model — identical cycle accounting.
func TestHWMatchesBehavioralRandomOps(t *testing.T) {
	for _, rtype := range []RouterType{LER, LSR} {
		rtype := rtype
		t.Run(rtype.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + rtype)))
			hw := NewBench(rtype)
			sw := NewBehavioral(rtype)
			const steps = 400

			for i := 0; i < steps; i++ {
				switch rng.Intn(10) {
				case 0, 1: // user push
					if sw.Stack().Depth() >= label.MaxDepth {
						continue
					}
					e := label.Entry{
						Label: label.Label(rng.Intn(1 << 20)),
						CoS:   label.CoS(rng.Intn(8)),
						TTL:   uint8(1 + rng.Intn(255)),
					}
					if err := sw.UserPush(e); err != nil {
						t.Fatalf("step %d: sw push: %v", i, err)
					}
					cycles, err := hw.UserPush(e)
					if err != nil {
						t.Fatalf("step %d: hw push: %v", i, err)
					}
					if cycles != CyclesUserPush {
						t.Fatalf("step %d: push took %d cycles", i, cycles)
					}
				case 2: // user pop
					if sw.Stack().Empty() {
						continue
					}
					want, err := sw.UserPop()
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := hw.UserPop()
					if err != nil {
						t.Fatalf("step %d: hw pop: %v", i, err)
					}
					if got != want {
						t.Fatalf("step %d: pop mismatch hw=%v sw=%v", i, got, want)
					}
				case 3, 4: // write pair
					lv := infobase.Level(1 + rng.Intn(3))
					if sw.InfoBase().Count(lv) >= 64 {
						continue // keep searches short
					}
					maxIdx := 1 << 20
					if lv == infobase.Level1 {
						maxIdx = 1 << 28
					}
					p := infobase.Pair{
						Index:    infobase.Key(rng.Intn(maxIdx)),
						NewLabel: label.Label(rng.Intn(1 << 20)),
						Op:       label.Op(rng.Intn(4)),
					}
					if err := sw.WritePair(lv, p); err != nil {
						t.Fatal(err)
					}
					if _, err := hw.WritePair(lv, p); err != nil {
						t.Fatal(err)
					}
				case 5, 6: // lookup
					lv := infobase.Level(1 + rng.Intn(3))
					key := randomKnownKey(rng, sw, lv)
					wantLbl, wantOp, wantPos, wantFound := sw.Lookup(lv, key)
					got, cycles, err := hw.Lookup(lv, key)
					if err != nil {
						t.Fatal(err)
					}
					if got.Found != wantFound || got.SearchPos != wantPos ||
						(wantFound && (got.Label != wantLbl || got.Op != wantOp)) {
						t.Fatalf("step %d: lookup(%d,%d) hw=%+v sw=(%d,%v,%d,%v)",
							i, lv, key, got, wantLbl, wantOp, wantPos, wantFound)
					}
					if cycles != SearchCycles(wantPos) {
						t.Fatalf("step %d: lookup cycles=%d, model=%d", i, cycles, SearchCycles(wantPos))
					}
				default: // update
					req := UpdateRequest{
						PacketID: uint32(rng.Intn(1 << 28)),
						TTLIn:    uint8(1 + rng.Intn(255)),
						CoSIn:    label.CoS(rng.Intn(8)),
					}
					want := sw.Update(req)
					got, cycles, err := hw.Update(req)
					if err != nil {
						t.Fatal(err)
					}
					if got.Discard != want.Discard || got.SearchPos != want.SearchPos {
						t.Fatalf("step %d: update mismatch hw=%+v sw=%+v", i, got, want)
					}
					if !want.Discarded() && (got.Op != want.Op || got.NewLabel != want.NewLabel) {
						t.Fatalf("step %d: update op mismatch hw=%+v sw=%+v", i, got, want)
					}
					if cycles != UpdateCycles(want) {
						t.Fatalf("step %d: update cycles=%d, model=%d (result %+v)", i, cycles, UpdateCycles(want), want)
					}
				}

				if hwStack := hw.StackSnapshot(); !hwStack.Equal(sw.Stack()) {
					t.Fatalf("step %d: stack divergence:\n  hw: %v\n  sw: %v", i, hwStack, sw.Stack())
				}
			}
		})
	}
}

// randomKnownKey returns an existing key half the time so lookups exercise
// both hit and miss paths.
func randomKnownKey(rng *rand.Rand, sw *Behavioral, lv infobase.Level) infobase.Key {
	entries := sw.InfoBase().Entries(lv)
	if len(entries) > 0 && rng.Intn(2) == 0 {
		return entries[rng.Intn(len(entries))].Index
	}
	if lv == infobase.Level1 {
		return infobase.Key(rng.Intn(1 << 28))
	}
	return infobase.Key(rng.Intn(1 << 20))
}

// TestHWInfoBaseSnapshotMatchesWrites checks the RAM contents against the
// behavioral store after a series of writes.
func TestHWInfoBaseSnapshotMatchesWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hw := NewBench(LER)
	sw := infobase.New()
	for i := 0; i < 50; i++ {
		lv := infobase.Level(1 + rng.Intn(3))
		p := infobase.Pair{
			Index:    infobase.Key(rng.Intn(1 << 20)),
			NewLabel: label.Label(rng.Intn(1 << 20)),
			Op:       label.Op(rng.Intn(4)),
		}
		if err := sw.Write(lv, p); err != nil {
			t.Fatal(err)
		}
		if _, err := hw.WritePair(lv, p); err != nil {
			t.Fatal(err)
		}
	}
	snap := hw.HW.InfoBaseSnapshot()
	for lv := infobase.Level1; lv <= infobase.Level3; lv++ {
		got, want := snap.Entries(lv), sw.Entries(lv)
		if len(got) != len(want) {
			t.Fatalf("level %d: %d entries, want %d", lv, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("level %d entry %d: %+v, want %+v", lv, i, got[i], want[i])
			}
		}
	}
}

// TestHWResetClearsState checks that the 3-cycle reset empties the stack
// and the write counters but leaves the architecture usable.
func TestHWResetClearsState(t *testing.T) {
	b := NewBench(LER)
	_, _ = b.UserPush(label.Entry{Label: 5, TTL: 9})
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 1, NewLabel: 2, Op: label.OpSwap})
	if _, err := b.ResetOp(); err != nil {
		t.Fatal(err)
	}
	if b.StackSnapshot().Depth() != 0 {
		t.Error("stack survived reset")
	}
	res, _, err := b.Lookup(infobase.Level2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("information base write counter survived reset")
	}
	// The device must accept new work immediately after reset.
	if _, err := b.UserPush(label.Entry{Label: 8, TTL: 2}); err != nil {
		t.Fatal(err)
	}
	if top, _ := b.StackSnapshot().Top(); top.Label != 8 {
		t.Error("push after reset did not land")
	}
}

// TestHWUserPopOnEmpty: popping an empty stack costs the usual 3 cycles
// and reports the empty-stack error without corrupting state.
func TestHWUserPopOnEmpty(t *testing.T) {
	b := NewBench(LER)
	_, cycles, err := b.UserPop()
	if err != label.ErrStackEmpty {
		t.Errorf("err = %v, want ErrStackEmpty", err)
	}
	if cycles != CyclesUserPop {
		t.Errorf("cycles = %d, want %d", cycles, CyclesUserPop)
	}
	if b.StackSnapshot().Depth() != 0 {
		t.Error("stack not empty")
	}
}

// TestHWBackToBackOperations verifies there is no stale state between
// consecutive commands (the sticky packetdiscard flag must clear when a
// new command starts).
func TestHWBackToBackOperations(t *testing.T) {
	b := NewBench(LSR)
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	// First update misses -> discard flag set, stack reset.
	res, _, err := b.Update(UpdateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discard != DiscardNotFound {
		t.Fatalf("first update = %+v", res)
	}
	// Prepare a hit and run again; the discard flag must not leak.
	_, _ = b.UserPush(label.Entry{Label: 42, TTL: 64})
	_, _ = b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 9, Op: label.OpSwap})
	res, _, err = b.Update(UpdateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded() {
		t.Fatalf("second update inherited the discard flag: %+v", res)
	}
	if top, _ := b.StackSnapshot().Top(); top.Label != 9 {
		t.Errorf("top = %v, want label 9", top)
	}
}

// TestBehavioralDiscardReasonsMatchSwmplsTelemetry is the property test
// tying the two data planes to one telemetry taxonomy: for randomized
// labelled stacks, the behavioral model's discard reason and the
// software forwarder's drop reason must map to the same
// telemetry.Reason — or both report success. It also demands every one
// of the paper's three discard transitions (lookup miss, TTL expiry,
// inconsistent operation) actually occurs during the run, so the
// equivalence is exercised, not vacuous.
func TestBehavioralDiscardReasonsMatchSwmplsTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var drops telemetry.DropCounters
	seen := make(map[telemetry.Reason]int)
	wantByReason := make(map[telemetry.Reason]uint64)

	const trials = 900
	for i := 0; i < trials; i++ {
		depth := 1 + rng.Intn(label.MaxDepth)
		entries := make([]label.Entry, depth)
		for j := range entries {
			ttl := uint8(2 + rng.Intn(200))
			if rng.Intn(3) == 0 {
				ttl = 1 // force TTL expiry at the decrement
			}
			entries[j] = label.Entry{
				Label: label.Label(16 + rng.Intn(1<<20-16)),
				CoS:   label.CoS(rng.Intn(8)),
				TTL:   ttl,
			}
		}
		top := entries[depth-1]

		// Random operation for the top label, installed equivalently in
		// both planes — or deliberately left uninstalled (lookup miss).
		op := []label.Op{label.OpPush, label.OpPop, label.OpSwap}[rng.Intn(3)]
		newLbl := label.Label(16 + rng.Intn(1<<20-16))
		install := rng.Intn(3) != 0

		fwd := swmpls.New()
		fwd.SetDropCounters(&drops)
		beh := NewBehavioral(LER)
		beh.SetTrace(telemetry.NewRing(8), "beh") // exercise tracing alongside
		if install {
			n := swmpls.NHLFE{NextHop: "next", Op: op}
			if op != label.OpPop {
				n.PushLabels = []label.Label{newLbl}
			}
			if err := fwd.InstallILM(top.Label, n); err != nil {
				t.Fatal(err)
			}
			lv := infobase.LevelForDepth(depth)
			if err := beh.WritePair(lv, infobase.Pair{
				Index: infobase.Key(top.Label), NewLabel: newLbl, Op: op,
			}); err != nil {
				t.Fatal(err)
			}
		}

		p := packet.New(packet.AddrFrom(192, 0, 2, 1), packet.AddrFrom(10, 0, 0, 9), 64, nil)
		for _, e := range entries {
			if err := p.Stack.Push(e); err != nil {
				t.Fatal(err)
			}
			if err := beh.UserPush(e); err != nil {
				t.Fatal(err)
			}
		}

		res := fwd.Forward(p)
		upd := beh.Update(UpdateRequest{PacketID: uint32(rng.Intn(1 << 28)), TTLIn: 64})

		if dropped, discarded := res.Action == swmpls.Drop, upd.Discarded(); dropped != discarded {
			t.Fatalf("trial %d (depth=%d op=%v install=%v ttl=%d): swmpls dropped=%v, behavioral discarded=%v (%v vs %v)",
				i, depth, op, install, top.TTL, dropped, discarded, res.Drop, upd.Discard)
		}
		swReason, swOK := res.Drop.Telemetry()
		lsmReason, lsmOK := upd.Discard.Telemetry()
		if swOK != lsmOK || (swOK && swReason != lsmReason) {
			t.Fatalf("trial %d (depth=%d op=%v install=%v): reason mismatch swmpls %v->(%v,%v), lsm %v->(%v,%v)",
				i, depth, op, install, res.Drop, swReason, swOK, upd.Discard, lsmReason, lsmOK)
		}
		if swOK {
			seen[swReason]++
			wantByReason[swReason]++
		}
	}

	for _, r := range []telemetry.Reason{
		telemetry.ReasonLookupMiss, telemetry.ReasonTTLExpired, telemetry.ReasonInconsistentOp,
	} {
		if seen[r] == 0 {
			t.Errorf("randomized run never produced %v; equivalence untested for it", r)
		}
		if got := drops.Get(r); got != wantByReason[r] {
			t.Errorf("forwarder counted %d %v drops, test observed %d", got, r, wantByReason[r])
		}
	}
	if drops.Total() != drops.Get(telemetry.ReasonLookupMiss)+
		drops.Get(telemetry.ReasonTTLExpired)+drops.Get(telemetry.ReasonInconsistentOp) {
		t.Errorf("unexpected extra drop reasons in %v", drops.Snapshot())
	}
}
