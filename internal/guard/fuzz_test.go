package guard

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
	"embeddedmpls/internal/transport"
)

// FuzzGuardAdmit drives hostile datagrams through the same pipeline the
// receiver uses — pre-admit peek, wire decode, full admission — against
// a guard with every check enabled. Whatever the bytes, the guard must
// neither panic nor let a packet through that violates an enabled
// invariant, and every call must account as exactly one admit or one
// drop.
func FuzzGuardAdmit(f *testing.F) {
	// Seeds mirror the transport fuzz corpus: a well-formed labelled
	// packet, a well-formed unlabelled packet, truncations and bit
	// damage thereof, plus raw garbage.
	lp := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 2), 64, []byte("payload"))
	lp.Stack.Push(label.Entry{Label: 100, CoS: 5, Bottom: true, TTL: 64})
	wire, err := transport.AppendPacket(nil, lp, 3)
	if err != nil {
		f.Fatal(err)
	}
	up := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 2), 8, nil)
	up.Header.FlowID = ctrlFlow
	uwire, err := transport.AppendPacket(nil, up, 3)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add(uwire)
	f.Add(wire[:len(wire)-3])
	f.Add(uwire[:4])
	damaged := append([]byte(nil), wire...)
	damaged[7] ^= 0xff
	f.Add(damaged)
	f.Add([]byte{})
	f.Add([]byte{0xe5, 0x4d, 1, 0x01, 0, 3})
	f.Add([]byte("not a packet at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		clk := &manualClock{}
		g := New(WithClock(clk.now), WithControlFlows(ctrlFlow),
			WithDefaultPolicy(Policy{
				SpoofFilter:         true,
				MinTTL:              2,
				RatePPS:             1e6,
				Burst:               1 << 16,
				QuarantineThreshold: 4,
			}))
		g.Advertise("peer", 100)

		const peer = "peer"
		for i := 0; i < 2; i++ { // second pass exercises tripped-breaker paths
			before := g.Drops().Total()
			labelledClaim := len(data) >= 4 && data[0] == 0xe5 && data[1] == 0x4d && data[3]&0x01 != 0
			if !g.PreAdmit(peer, labelledClaim) {
				if g.Drops().Total() != before+1 {
					t.Fatal("pre-admit rejection not accounted")
				}
				continue
			}
			var p packet.Packet
			if _, err := transport.DecodePacket(&p, data); err != nil {
				g.Malformed(peer)
				continue
			}
			admitted := g.Admit(&p, peer)
			after := g.Drops().Total()
			if admitted && after != before {
				t.Fatalf("admitted packet charged %d drops", after-before)
			}
			if !admitted && after != before+1 {
				t.Fatalf("rejected packet accounted %d drops, want 1", after-before)
			}
			if admitted && p.Labelled() {
				top, _ := p.Stack.Top()
				if !g.Advertised(peer, top.Label) {
					t.Fatalf("spoofed label %v admitted", top.Label)
				}
				if top.TTL < 2 {
					t.Fatalf("labelled packet with TTL %d admitted below minimum", top.TTL)
				}
			}
			if admitted && !p.Labelled() {
				if p.Header.FlowID != ctrlFlow && p.Header.TTL < 2 {
					t.Fatalf("unlabelled packet with TTL %d admitted below minimum", p.Header.TTL)
				}
			}
			_ = telemetry.ReasonQuarantine
		}
	})
}
