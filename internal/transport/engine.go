package transport

import (
	"embeddedmpls/internal/dataplane"
	"embeddedmpls/internal/packet"
)

// FeedEngine returns a receiver sink that pushes decoded batches into a
// dataplane engine via SubmitBatch, so batched socket reads flow into
// batched shard ingestion without per-packet dispatch. The engine keeps
// packets beyond the sink call, so each one is cloned off the
// receiver's reusable storage; with wait set, a full shard queue
// exerts backpressure on the socket loop instead of dropping.
func FeedEngine(e *dataplane.Engine, wait bool) func(batch []Inbound) {
	return func(batch []Inbound) {
		ps := make([]*packet.Packet, len(batch))
		for i, in := range batch {
			ps[i] = in.P.Clone()
		}
		e.SubmitBatch(ps, wait)
	}
}
