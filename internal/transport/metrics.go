package transport

import (
	"fmt"
	"sync"
	"sync/atomic"

	"embeddedmpls/internal/telemetry"
)

// Metrics is the per-link (or per-node, when shared) accounting of the
// transport plane. All counters are atomic, so links and receivers
// update them from their own goroutines while a registry scrapes.
type Metrics struct {
	// TxPackets/TxBytes count packets (and their wire bytes) written to
	// the socket; with frame coalescing one datagram carries several
	// packets, so TxDatagrams counts the datagrams and TxSyscalls the
	// send syscalls — batching is working when syscalls < datagrams <=
	// packets. TxErrors counts failed socket writes (per datagram);
	// TxLost counts packets discarded before the socket (link down or
	// closed, fault verdict).
	TxPackets   atomic.Uint64
	TxBytes     atomic.Uint64
	TxDatagrams atomic.Uint64
	TxSyscalls  atomic.Uint64
	TxErrors    atomic.Uint64
	TxLost      atomic.Uint64
	// EncodeErrors counts packets the codec refused to encode.
	EncodeErrors atomic.Uint64
	// RxPackets counts packets decoded from arrivals; RxBytes,
	// RxDatagrams and RxSyscalls mirror the send-side split for the
	// receive direction (RxBytes counts datagram bytes read, decodable
	// or not).
	RxPackets   atomic.Uint64
	RxBytes     atomic.Uint64
	RxDatagrams atomic.Uint64
	RxSyscalls  atomic.Uint64
	// DecodeErrors counts datagrams (or frame segments) that failed to
	// decode; ShortReads is the subset that were truncated rather than
	// corrupted.
	DecodeErrors atomic.Uint64
	ShortReads   atomic.Uint64
}

// SyscallsPerPacket reports the combined send+receive syscall cost per
// delivered packet — the figure the batch sweep in mplsbench records
// to prove batching is actually batching. Zero when nothing moved.
func (m *Metrics) SyscallsPerPacket() float64 {
	pkts := m.TxPackets.Load() + m.RxPackets.Load()
	if pkts == 0 {
		return 0
	}
	return float64(m.TxSyscalls.Load()+m.RxSyscalls.Load()) / float64(pkts)
}

// bufPool recycles encode buffers so steady-state sends allocate
// nothing. Buffers that had to grow past MaxDatagram are pooled at
// their grown size — a node forwarding jumbo payloads settles at the
// larger size instead of reallocating per packet.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxDatagram)
		return &b
	},
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { *b = (*b)[:0]; bufPool.Put(b) }

// Register wires the metrics into a telemetry registry under
// mpls_transport_* series with the given labels (typically
// {"node": ..., "link": ...}). Values are read live at scrape time.
func (m *Metrics) Register(reg *telemetry.Registry, labels telemetry.Labels) {
	counter := func(name, help string, v *atomic.Uint64) {
		reg.Counter(name, help, labels, v.Load)
	}
	counter("mpls_transport_tx_packets_total", "Packets written to transport sockets.", &m.TxPackets)
	counter("mpls_transport_tx_bytes_total", "Bytes written to transport sockets.", &m.TxBytes)
	counter("mpls_transport_tx_datagrams_total", "Datagrams written to transport sockets (coalesced frames count once).", &m.TxDatagrams)
	counter("mpls_transport_tx_syscalls_total", "Send syscalls issued (sendmmsg batches count once).", &m.TxSyscalls)
	counter("mpls_transport_tx_errors_total", "Failed transport socket writes.", &m.TxErrors)
	counter("mpls_transport_lost_packets_total", "Packets discarded before the socket (link down, closed, or fault).", &m.TxLost)
	counter("mpls_transport_encode_errors_total", "Packets the wire codec refused to encode.", &m.EncodeErrors)
	counter("mpls_transport_rx_packets_total", "Packets decoded from transport sockets.", &m.RxPackets)
	counter("mpls_transport_rx_bytes_total", "Bytes received on transport sockets.", &m.RxBytes)
	counter("mpls_transport_rx_datagrams_total", "Datagrams read from transport sockets.", &m.RxDatagrams)
	counter("mpls_transport_rx_syscalls_total", "Receive syscalls issued (recvmmsg batches count once).", &m.RxSyscalls)
	counter("mpls_transport_decode_errors_total", "Datagrams or frame segments that failed to decode (wire-decode drops).", &m.DecodeErrors)
	counter("mpls_transport_short_reads_total", "Decode failures caused by truncated datagrams.", &m.ShortReads)
}

// String summarises the counters for logs.
func (m *Metrics) String() string {
	return fmt.Sprintf("transport{tx=%d/%dB dgram=%d sys=%d txerr=%d lost=%d rx=%d/%dB dgram=%d sys=%d decerr=%d short=%d}",
		m.TxPackets.Load(), m.TxBytes.Load(), m.TxDatagrams.Load(), m.TxSyscalls.Load(),
		m.TxErrors.Load(), m.TxLost.Load(),
		m.RxPackets.Load(), m.RxBytes.Load(), m.RxDatagrams.Load(), m.RxSyscalls.Load(),
		m.DecodeErrors.Load(), m.ShortReads.Load())
}
