package guard

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/telemetry"
)

const ctrlFlow = 0xfdb5

// manualClock is an injectable time source tests advance by hand.
type manualClock struct{ t float64 }

func (c *manualClock) now() float64       { return c.t }
func (c *manualClock) advance(dt float64) { c.t += dt }

func labelled(t *testing.T, lbl label.Label, cos label.CoS, ttl uint8) *packet.Packet {
	t.Helper()
	p := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 2), 64, nil)
	if err := p.Stack.Push(label.Entry{Label: lbl, CoS: cos, Bottom: true, TTL: ttl}); err != nil {
		t.Fatal(err)
	}
	return p
}

func plain(flow uint16, ttl uint8) *packet.Packet {
	p := packet.New(packet.AddrFrom(10, 0, 0, 1), packet.AddrFrom(10, 0, 0, 2), ttl, nil)
	p.Header.FlowID = flow
	return p
}

func TestSpoofFilter(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now), WithDefaultPolicy(Policy{SpoofFilter: true}))

	g.Advertise("b", 100)
	if !g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Error("advertised label rejected")
	}
	if g.Admit(labelled(t, 101, 0, 64), "b") {
		t.Error("unadvertised label admitted")
	}
	if g.Admit(labelled(t, 100, 0, 64), "c") {
		t.Error("label admitted from a peer it was never advertised to")
	}
	// Unlabelled traffic is outside the spoof filter's remit.
	if !g.Admit(plain(7, 64), "b") {
		t.Error("unlabelled packet rejected by spoof filter")
	}
	g.Withdraw("b", 100)
	if g.Admit(labelled(t, 100, 0, 64), "b") {
		t.Error("withdrawn label still admitted")
	}
	if got := g.Drops().Get(telemetry.ReasonLabelSpoof); got != 3 {
		t.Errorf("label-spoof drops = %d, want 3", got)
	}
}

func TestTTLSecurity(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now), WithControlFlows(ctrlFlow),
		WithDefaultPolicy(Policy{MinTTL: 5}))

	if g.Admit(labelled(t, 100, 0, 4), "b") {
		t.Error("labelled packet below MinTTL admitted")
	}
	if !g.Admit(labelled(t, 100, 0, 5), "b") {
		t.Error("labelled packet at MinTTL rejected")
	}
	if g.Admit(plain(7, 2), "b") {
		t.Error("unlabelled data below MinTTL admitted")
	}
	// Control packets are classified before the TTL check: the local
	// control protocols send with a small fixed TTL by design.
	if !g.Admit(plain(ctrlFlow, 2), "b") {
		t.Error("control packet rejected by TTL security")
	}
	if got := g.Drops().Get(telemetry.ReasonTTLSecurity); got != 2 {
		t.Errorf("ttl-security drops = %d, want 2", got)
	}
}

// TestRateLimitShedsBestEffortFirst drains the bucket with best-effort
// traffic and checks that high-CoS traffic still gets through while
// CoS 0 is shed — and that control traffic is never charged at all.
func TestRateLimitShedsBestEffortFirst(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now), WithControlFlows(ctrlFlow),
		WithDefaultPolicy(Policy{RatePPS: 100, Burst: 64}))

	admitted := map[label.CoS]int{}
	for i := 0; i < 200; i++ {
		for _, cos := range []label.CoS{0, 7} {
			if g.Admit(labelled(t, 0, cos, 64), "b") {
				admitted[cos]++
			}
		}
	}
	if admitted[0] >= admitted[7] {
		t.Errorf("best effort admitted %d >= CoS 7 admitted %d; shedding is not CoS-aware",
			admitted[0], admitted[7])
	}
	if admitted[7] == 0 {
		t.Error("CoS 7 fully shed")
	}
	// The bucket is now exhausted; control still flows.
	for i := 0; i < 50; i++ {
		if !g.Admit(plain(ctrlFlow, 8), "b") {
			t.Fatal("control packet shed by rate limiter")
		}
	}
	if g.Drops().Get(telemetry.ReasonRateLimit) == 0 {
		t.Error("no rate-limit drops counted")
	}

	// Refill: after a second at 100 pps everything low-rate flows again.
	clk.advance(1)
	if !g.Admit(labelled(t, 0, 0, 64), "b") {
		t.Error("best effort still shed after refill")
	}
}

func TestQuarantineBreaker(t *testing.T) {
	clk := &manualClock{}
	var events telemetry.EventCounters
	g := New(WithClock(clk.now), WithEvents(&events), WithControlFlows(ctrlFlow),
		WithDefaultPolicy(Policy{QuarantineThreshold: 5, QuarantineWindow: 1, QuarantineHold: 2}))

	// Below the threshold: nothing trips.
	for i := 0; i < 4; i++ {
		g.Malformed("b")
	}
	if g.Quarantined("b") {
		t.Fatal("breaker tripped below threshold")
	}
	// The window elapses; the count starts over.
	clk.advance(1.5)
	for i := 0; i < 4; i++ {
		g.Malformed("b")
	}
	if g.Quarantined("b") {
		t.Fatal("stale window counted towards the threshold")
	}
	g.Malformed("b")
	if !g.Quarantined("b") {
		t.Fatal("breaker not tripped at threshold")
	}
	if events.Get(telemetry.EventQuarantineTrip) != 1 {
		t.Errorf("trip events = %d, want 1", events.Get(telemetry.EventQuarantineTrip))
	}

	// Open breaker: labelled traffic dies pre-decode, data dies in
	// Admit, control survives.
	if g.PreAdmit("b", true) {
		t.Error("labelled datagram pre-admitted while quarantined")
	}
	if !g.PreAdmit("b", false) {
		t.Error("unlabelled datagram blocked pre-decode")
	}
	if g.Admit(plain(7, 64), "b") {
		t.Error("data packet admitted while quarantined")
	}
	if !g.Admit(plain(ctrlFlow, 8), "b") {
		t.Error("control packet dropped while quarantined")
	}
	// Other peers are unaffected.
	if !g.Admit(plain(7, 64), "c") {
		t.Error("quarantine leaked to an innocent peer")
	}

	// Hold expires: peer readmitted, clear event emitted once.
	clk.advance(2.5)
	if g.Quarantined("b") {
		t.Fatal("breaker still open after hold")
	}
	if !g.Admit(plain(7, 64), "b") {
		t.Error("data packet rejected after quarantine cleared")
	}
	if events.Get(telemetry.EventQuarantineClear) != 1 {
		t.Errorf("clear events = %d, want 1", events.Get(telemetry.EventQuarantineClear))
	}
	if g.Drops().Get(telemetry.ReasonQuarantine) != 2 {
		t.Errorf("quarantine drops = %d, want 2", g.Drops().Get(telemetry.ReasonQuarantine))
	}
}

func TestInactiveGuardAdmitsEverything(t *testing.T) {
	g := New() // no policy at all
	if !g.Admit(labelled(t, 999, 0, 1), "b") || !g.PreAdmit("b", true) {
		t.Error("zero-policy guard rejected traffic")
	}
	g.Malformed("b") // must not create state or panic
	if g.Quarantined("b") {
		t.Error("zero-policy guard quarantined a peer")
	}
}

func TestPerLinkPolicyOverridesDefault(t *testing.T) {
	clk := &manualClock{}
	g := New(WithClock(clk.now),
		WithDefaultPolicy(Policy{MinTTL: 5}),
		WithLinkPolicy("trusted", Policy{}))

	if g.Admit(labelled(t, 1, 0, 1), "b") {
		t.Error("default policy not applied to unlisted peer")
	}
	if !g.Admit(labelled(t, 1, 0, 1), "trusted") {
		t.Error("per-link empty policy did not override the default")
	}
}

func TestDropFuncForwarding(t *testing.T) {
	var forwarded []telemetry.Reason
	g := New(WithDefaultPolicy(Policy{MinTTL: 9}),
		WithDropFunc(func(r telemetry.Reason) { forwarded = append(forwarded, r) }))
	g.Admit(plain(7, 1), "b")
	if len(forwarded) != 1 || forwarded[0] != telemetry.ReasonTTLSecurity {
		t.Errorf("forwarded = %v, want [ttl-security]", forwarded)
	}
}
