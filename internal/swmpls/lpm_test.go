package swmpls

import (
	"testing"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
)

// The FTN's longest-prefix match is now load-bearing for the sharded
// dataplane engine, so its boundary behaviour is pinned down here: the
// /0 default route, /32 host routes, and overlapping prefixes.

func pushNHLFE(lbl label.Label, nh string) NHLFE {
	return NHLFE{NextHop: nh, Op: label.OpPush, PushLabels: []label.Label{lbl}}
}

// ingressHop forwards an unlabelled packet for dst and returns the next
// hop it was pushed toward.
func ingressHop(t *testing.T, f *Forwarder, dst packet.Addr) (string, bool) {
	t.Helper()
	p := packet.New(packet.AddrFrom(192, 0, 2, 1), dst, 64, nil)
	res := f.Forward(p)
	switch res.Action {
	case Forward:
		return res.NextHop, true
	case Drop:
		return "", false
	default:
		t.Fatalf("unexpected action %v for %v", res.Action, dst)
		return "", false
	}
}

func TestLPMDefaultRoute(t *testing.T) {
	f := New()
	if err := f.MapFEC(0, 0, pushNHLFE(100, "default")); err != nil {
		t.Fatal(err)
	}
	// A /0 entry matches absolutely everything.
	for _, dst := range []packet.Addr{
		0,
		packet.AddrFrom(10, 0, 0, 1),
		packet.AddrFrom(255, 255, 255, 255),
	} {
		nh, ok := ingressHop(t, f, dst)
		if !ok || nh != "default" {
			t.Errorf("dst %v: got (%q,%v), want default route", dst, nh, ok)
		}
	}
}

func TestLPMHostRoute(t *testing.T) {
	f := New()
	host := packet.AddrFrom(10, 0, 0, 9)
	if err := f.MapFEC(host, 32, pushNHLFE(100, "host")); err != nil {
		t.Fatal(err)
	}
	if nh, ok := ingressHop(t, f, host); !ok || nh != "host" {
		t.Errorf("host route: got (%q,%v)", nh, ok)
	}
	// The immediate neighbours of the host address must miss.
	for _, dst := range []packet.Addr{host - 1, host + 1} {
		if nh, ok := ingressHop(t, f, dst); ok {
			t.Errorf("dst %v wrongly matched /32 for %v (next hop %q)", dst, host, nh)
		}
	}
}

func TestLPMLongestWins(t *testing.T) {
	f := New()
	// Nested prefixes 10/8 ⊃ 10.1/16 ⊃ 10.1.2/24 ⊃ 10.1.2.3/32, plus a
	// default route underneath them all.
	for _, e := range []struct {
		dst packet.Addr
		len int
		nh  string
	}{
		{0, 0, "default"},
		{packet.AddrFrom(10, 0, 0, 0), 8, "eight"},
		{packet.AddrFrom(10, 1, 0, 0), 16, "sixteen"},
		{packet.AddrFrom(10, 1, 2, 0), 24, "twentyfour"},
		{packet.AddrFrom(10, 1, 2, 3), 32, "thirtytwo"},
	} {
		if err := f.MapFEC(e.dst, e.len, pushNHLFE(100, e.nh)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		dst  packet.Addr
		want string
	}{
		{packet.AddrFrom(10, 1, 2, 3), "thirtytwo"},
		{packet.AddrFrom(10, 1, 2, 4), "twentyfour"},
		{packet.AddrFrom(10, 1, 3, 1), "sixteen"},
		{packet.AddrFrom(10, 2, 0, 1), "eight"},
		{packet.AddrFrom(11, 0, 0, 1), "default"},
	}
	for _, c := range cases {
		if nh, ok := ingressHop(t, f, c.dst); !ok || nh != c.want {
			t.Errorf("dst %v: got (%q,%v), want %q", c.dst, nh, ok, c.want)
		}
	}
	// Removing the most specific entry re-exposes the next-longest.
	if !f.UnmapFEC(packet.AddrFrom(10, 1, 2, 3), 32) {
		t.Fatal("UnmapFEC reported no /32 entry")
	}
	if nh, _ := ingressHop(t, f, packet.AddrFrom(10, 1, 2, 3)); nh != "twentyfour" {
		t.Errorf("after removing /32: got %q, want twentyfour", nh)
	}
}

func TestLPMPrefixLenValidation(t *testing.T) {
	f := New()
	for _, bad := range []int{-1, 33} {
		if err := f.MapFEC(0, bad, pushNHLFE(100, "x")); err == nil {
			t.Errorf("prefix length %d accepted", bad)
		}
		if f.UnmapFEC(0, bad) {
			t.Errorf("UnmapFEC(%d) reported success", bad)
		}
	}
}

// TestCloneIndependence pins the copy-on-write contract the dataplane
// engine's RCU snapshots rely on: edits to a clone never surface in the
// original, and vice versa.
func TestCloneIndependence(t *testing.T) {
	orig := New()
	dst := packet.AddrFrom(10, 1, 0, 0)
	if err := orig.MapFEC(dst, 16, pushNHLFE(100, "old")); err != nil {
		t.Fatal(err)
	}
	if err := orig.MapLabel(100, NHLFE{NextHop: "old", Op: label.OpSwap, PushLabels: []label.Label{200}}); err != nil {
		t.Fatal(err)
	}

	clone := orig.Clone()
	if err := clone.MapFEC(dst, 16, pushNHLFE(101, "new")); err != nil {
		t.Fatal(err)
	}
	if err := clone.MapLabel(100, NHLFE{NextHop: "new", Op: label.OpSwap, PushLabels: []label.Label{201}}); err != nil {
		t.Fatal(err)
	}
	if err := clone.MapLabel(300, NHLFE{NextHop: "extra", Op: label.OpSwap, PushLabels: []label.Label{301}}); err != nil {
		t.Fatal(err)
	}
	clone.UnmapFEC(dst, 16)

	// The original still answers from its own tables.
	if nh, ok := ingressHop(t, orig, packet.AddrFrom(10, 1, 9, 9)); !ok || nh != "old" {
		t.Errorf("original FTN changed by clone edits: (%q,%v)", nh, ok)
	}
	if n, ok := orig.LookupILM(100); !ok || n.NextHop != "old" {
		t.Errorf("original ILM changed by clone edits: (%+v,%v)", n, ok)
	}
	if _, ok := orig.LookupILM(300); ok {
		t.Error("clone-only ILM entry leaked into the original")
	}
	// And the clone answers from its edited tables.
	if _, ok := ingressHop(t, clone, packet.AddrFrom(10, 1, 9, 9)); ok {
		t.Error("clone FTN still holds the entry it removed")
	}
	if n, ok := clone.LookupILM(100); !ok || n.NextHop != "new" {
		t.Errorf("clone ILM lost its edit: (%+v,%v)", n, ok)
	}
	if orig.ILMSize() != 1 || clone.ILMSize() != 2 {
		t.Errorf("ILM sizes orig=%d clone=%d, want 1/2", orig.ILMSize(), clone.ILMSize())
	}
}
