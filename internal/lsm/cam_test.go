package lsm

import (
	"math/rand"
	"testing"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
)

// TestCAMLookupConstantTime pins the associative ablation's headline
// property: lookup cost is CyclesSearchCAM regardless of table size or
// key position.
func TestCAMLookupConstantTime(t *testing.T) {
	b := NewBenchWith(LSR, Options{Search: SearchCAM})
	for _, n := range []int{1, 10, 100, 500} {
		for b.HW.Sim.Lookup("ib_wcnt_2").Get() < uint64(n) {
			i := b.HW.Sim.Lookup("ib_wcnt_2").Get()
			if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(i + 1), NewLabel: label.Label(500 + i), Op: label.OpSwap}); err != nil {
				t.Fatal(err)
			}
		}
		// First entry, last entry and a miss all cost the same.
		for _, key := range []infobase.Key{1, infobase.Key(n), 99999} {
			res, cycles, err := b.Lookup(infobase.Level2, key)
			if err != nil {
				t.Fatal(err)
			}
			if cycles != CyclesSearchCAM {
				t.Errorf("n=%d key=%d: %d cycles, want constant %d", n, key, cycles, CyclesSearchCAM)
			}
			wantFound := key != 99999
			if res.Found != wantFound {
				t.Errorf("n=%d key=%d: found=%v", n, key, res.Found)
			}
		}
	}
}

// TestCAMLookupCorrectValues checks the CAM returns the same answers as
// the linear design, including first-match-wins on duplicates.
func TestCAMLookupCorrectValues(t *testing.T) {
	cam := NewBenchWith(LER, Options{Search: SearchCAM})
	lin := NewBench(LER)
	rng := rand.New(rand.NewSource(13))
	type write struct {
		lv infobase.Level
		p  infobase.Pair
	}
	var writes []write
	for i := 0; i < 60; i++ {
		w := write{
			lv: infobase.Level(1 + rng.Intn(3)),
			p: infobase.Pair{
				Index:    infobase.Key(rng.Intn(40)), // force duplicates
				NewLabel: label.Label(1000 + i),
				Op:       label.Op(1 + rng.Intn(3)),
			},
		}
		writes = append(writes, w)
		if _, err := cam.WritePair(w.lv, w.p); err != nil {
			t.Fatal(err)
		}
		if _, err := lin.WritePair(w.lv, w.p); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 300; trial++ {
		lv := infobase.Level(1 + rng.Intn(3))
		key := infobase.Key(rng.Intn(50))
		rc, _, err := cam.Lookup(lv, key)
		if err != nil {
			t.Fatal(err)
		}
		rl, _, err := lin.Lookup(lv, key)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Found != rl.Found || rc.Label != rl.Label || rc.Op != rl.Op {
			t.Fatalf("trial %d (lv %d key %d): cam=%+v linear=%+v", trial, lv, key, rc, rl)
		}
		if rc.Found && rc.SearchPos != rl.SearchPos {
			t.Fatalf("trial %d: hit position differs: cam=%d linear=%d (first match must win)",
				trial, rc.SearchPos, rl.SearchPos)
		}
	}
}

// TestCAMUpdateSwap runs the full update path on the CAM variant: same
// stack transformation as the paper's design, constant search component.
func TestCAMUpdateSwap(t *testing.T) {
	b := NewBenchWith(LSR, Options{Search: SearchCAM})
	for i := 0; i < 200; i++ {
		if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: infobase.Key(1000 + i), NewLabel: 1, Op: label.OpSwap}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: 42, NewLabel: 777, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.UserPush(label.Entry{Label: 42, CoS: 3, TTL: 64}); err != nil {
		t.Fatal(err)
	}
	res, cycles, err := b.Update(UpdateRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Discarded() || res.NewLabel != 777 {
		t.Fatalf("result = %+v", res)
	}
	if want := CyclesSearchCAM + CyclesSwapFromIB; cycles != want {
		t.Errorf("CAM swap update: %d cycles, want %d (constant despite 201 entries)", cycles, want)
	}
	top, _ := b.StackSnapshot().Top()
	if top.Label != 777 || top.TTL != 63 || top.CoS != 3 {
		t.Errorf("top = %v", top)
	}
}

// TestCAMResetInvalidates checks that the 3-cycle reset also clears the
// associative banks (a stale CAM hit after reset would resurrect dead
// LSPs).
func TestCAMResetInvalidates(t *testing.T) {
	b := NewBenchWith(LER, Options{Search: SearchCAM})
	if _, err := b.WritePair(infobase.Level2, infobase.Pair{Index: 5, NewLabel: 6, Op: label.OpSwap}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ResetOp(); err != nil {
		t.Fatal(err)
	}
	res, cycles, err := b.Lookup(infobase.Level2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("CAM hit survived reset")
	}
	if cycles != CyclesSearchCAM {
		t.Errorf("post-reset lookup = %d cycles", cycles)
	}
}

// TestCAMMatchesBehavioralRandomOps reuses the equivalence harness
// against the CAM-configured hardware: the functional semantics must be
// identical to the paper's design, only the timing differs.
func TestCAMMatchesBehavioralRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	hw := NewBenchWith(LSR, Options{Search: SearchCAM})
	sw := NewBehavioral(LSR)
	for i := 0; i < 250; i++ {
		switch rng.Intn(6) {
		case 0, 1: // write pair (distinct keys so positions align)
			lv := infobase.Level(1 + rng.Intn(3))
			if sw.InfoBase().Count(lv) >= 48 {
				continue
			}
			p := infobase.Pair{
				Index:    infobase.Key(rng.Intn(1 << 16)),
				NewLabel: label.Label(rng.Intn(1 << 20)),
				Op:       label.Op(rng.Intn(4)),
			}
			if err := sw.WritePair(lv, p); err != nil {
				t.Fatal(err)
			}
			if _, err := hw.WritePair(lv, p); err != nil {
				t.Fatal(err)
			}
		case 2: // user push
			if sw.Stack().Depth() >= label.MaxDepth {
				continue
			}
			e := label.Entry{Label: label.Label(rng.Intn(1 << 20)), TTL: uint8(1 + rng.Intn(255))}
			if err := sw.UserPush(e); err != nil {
				t.Fatal(err)
			}
			if _, err := hw.UserPush(e); err != nil {
				t.Fatal(err)
			}
		default: // update
			req := UpdateRequest{PacketID: uint32(rng.Intn(1 << 16)), TTLIn: uint8(1 + rng.Intn(255))}
			want := sw.Update(req)
			got, cycles, err := hw.Update(req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Discard != want.Discard {
				t.Fatalf("step %d: discard hw=%v sw=%v", i, got.Discard, want.Discard)
			}
			if !want.Discarded() && (got.Op != want.Op || got.NewLabel != want.NewLabel) {
				t.Fatalf("step %d: op mismatch hw=%+v sw=%+v", i, got, want)
			}
			// Constant search component under CAM.
			wantCycles := UpdateCycles(want) - SearchCycles(want.SearchPos) + CyclesSearchCAM
			if cycles != wantCycles {
				t.Fatalf("step %d: cycles=%d want=%d (result %+v)", i, cycles, wantCycles, want)
			}
		}
		if !hw.StackSnapshot().Equal(sw.Stack()) {
			t.Fatalf("step %d: stack divergence hw=%v sw=%v", i, hw.StackSnapshot(), sw.Stack())
		}
	}
}
