package mgmt

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/signaling"
	"embeddedmpls/internal/telemetry"
)

// Node adapts one built distributed node (config.BuildNode's output)
// to the RPC surface: every handler below closes over the same Built
// the daemon runs, so RPCs mutate the live speaker, guard and tables —
// there is no shadow state to drift.
type Node struct {
	B *config.Built
	// ScenarioPath is the file config.reload re-Loads; empty disables
	// the method.
	ScenarioPath string
	// Overrides are the boot-time flag overrides, re-applied to every
	// reloaded scenario so a reload cannot silently revert what the
	// operator set on the command line.
	Overrides *config.Overrides

	srv *Server
}

// NewNode wraps a built node for RPC service.
func NewNode(b *config.Built, scenarioPath string, o *config.Overrides) *Node {
	return &Node{B: b, ScenarioPath: scenarioPath, Overrides: o}
}

// Attach registers every handler on srv. The server's lock must be the
// node's network lock (the daemon passes b.Net).
func (n *Node) Attach(srv *Server) {
	n.srv = srv
	srv.Register(StatusMethod, n.status)
	srv.Register("lsp.provision", n.lspProvision)
	srv.Register("lsp.teardown", n.lspTeardown)
	srv.Register("lsp.list", n.lspList)
	srv.Register("session.list", n.sessionList)
	srv.Register("infobase.get", n.infobaseGet)
	srv.Register("telemetry.scrape", n.telemetryScrape)
	srv.Register("guard.set", n.guardSet)
	srv.Register("config.reload", n.configReload)
}

// ---- node.status ----

// StatusResult is the node.status payload — the one answer a node
// still gives while draining.
type StatusResult struct {
	Node     string `json:"node"`
	Draining bool   `json:"draining"`
	// SimTime is the node clock (wall-tracking in distributed mode).
	SimTime float64 `json:"sim_time_s"`
	// Sessions / SessionsUp count signaling sessions.
	Sessions   int `json:"sessions"`
	SessionsUp int `json:"sessions_up"`
	// LSPs counts generations with local state; Ingress and Established
	// count this node's own bases and how many are mapped end to end.
	LSPs        int `json:"lsps"`
	Ingress     int `json:"ingress_lsps"`
	Established int `json:"established_lsps"`
	// Drops snapshots the node-level drop counters by reason (zero
	// reasons omitted) — what mplsctl watch drops polls.
	Drops map[string]uint64 `json:"drops,omitempty"`
	// GuardDrops snapshots the admission guard's own counters, when one
	// is armed.
	GuardDrops map[string]uint64 `json:"guard_drops,omitempty"`
	// Methods lists the RPC surface, so a controller can probe
	// capabilities across mixed-version fleets.
	Methods []string `json:"methods,omitempty"`
}

func (n *Node) status(json.RawMessage) (any, error) {
	st := StatusResult{
		Node:    n.B.LocalNode,
		SimTime: float64(n.B.Net.Sim.Now()),
		Drops:   dropsMap(n.B.Drops),
	}
	if n.srv != nil {
		st.Draining = n.srv.Draining()
		st.Methods = n.srv.Methods()
	}
	if sp := n.B.Speaker; sp != nil {
		for _, s := range sp.Sessions() {
			st.Sessions++
			if s.Up {
				st.SessionsUp++
			}
		}
		for _, l := range sp.List() {
			st.LSPs++
			if l.Role == "ingress" {
				st.Ingress++
				if l.Established {
					st.Established++
				}
			}
		}
	}
	if g := n.B.Guard; g != nil {
		st.GuardDrops = dropsMap(g.Drops())
	}
	return st, nil
}

func dropsMap(c *telemetry.DropCounters) map[string]uint64 {
	if c == nil {
		return nil
	}
	snap := c.Snapshot()
	out := map[string]uint64{}
	for r := telemetry.Reason(0); r < telemetry.NumReasons; r++ {
		if snap[r] > 0 {
			out[r.String()] = snap[r]
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ---- lsp.* ----

// ProvisionResult acknowledges a signalled (not yet established) LSP.
type ProvisionResult struct {
	ID string `json:"id"`
	// Signalled means the request was accepted and sent downstream;
	// establishment is asynchronous — poll lsp.list.
	Signalled bool `json:"signalled"`
}

// lspProvision takes a scenario-shaped LSP declaration (the same JSON
// the scenario file's lsps array holds) and signals it at runtime.
// Re-provisioning an existing id switches it make-before-break.
func (n *Node) lspProvision(params json.RawMessage) (any, error) {
	var l config.LSP
	if err := strictUnmarshal(params, &l); err != nil {
		return nil, err
	}
	if l.ID == "" || l.Dst == "" {
		return nil, Errorf(CodeBadParams, "lsp.provision needs id and dst")
	}
	if err := n.B.ProvisionLSP(l); err != nil {
		return nil, BadParams(err)
	}
	return ProvisionResult{ID: l.ID, Signalled: true}, nil
}

// TeardownParams names the LSP to release.
type TeardownParams struct {
	ID string `json:"id"`
}

func (n *Node) lspTeardown(params json.RawMessage) (any, error) {
	var p TeardownParams
	if err := strictUnmarshal(params, &p); err != nil {
		return nil, err
	}
	if p.ID == "" {
		return nil, Errorf(CodeBadParams, "lsp.teardown needs id")
	}
	if err := n.B.Speaker.Teardown(p.ID); err != nil {
		return nil, BadParams(err)
	}
	return map[string]any{"id": p.ID, "released": true}, nil
}

// LSPListResult is the lsp.list payload.
type LSPListResult struct {
	Node string              `json:"node"`
	LSPs []signaling.LSPInfo `json:"lsps"`
}

func (n *Node) lspList(json.RawMessage) (any, error) {
	return LSPListResult{Node: n.B.LocalNode, LSPs: n.B.Speaker.List()}, nil
}

// SessionListResult is the session.list payload.
type SessionListResult struct {
	Node     string                  `json:"node"`
	Sessions []signaling.SessionInfo `json:"sessions"`
}

func (n *Node) sessionList(json.RawMessage) (any, error) {
	return SessionListResult{Node: n.B.LocalNode, Sessions: n.B.Speaker.Sessions()}, nil
}

// ---- infobase.get ----

// InfobaseParams selects which level to dump; 0 dumps all.
// Level 1 is the ingress FTN (FEC → push), matching the paper's
// level-1 information base; level 2 is the ILM (incoming label →
// NHLFE), which the software forwarder keeps depth-independent.
type InfobaseParams struct {
	Level int `json:"level,omitempty"`
}

// InfobaseEntry is one table binding rendered for operators.
type InfobaseEntry struct {
	// FEC is set on level-1 entries ("a.b.c.d/len").
	FEC string `json:"fec,omitempty"`
	// InLabel is set on level-2 entries.
	InLabel uint32 `json:"in_label,omitempty"`
	NextHop string `json:"next_hop,omitempty"`
	Op      string `json:"op"`
	// Labels are pushed (or swapped-in) on the way out.
	Labels []uint32 `json:"labels,omitempty"`
	CoS    uint8    `json:"cos,omitempty"`
}

// InfobaseLevel groups one level's entries.
type InfobaseLevel struct {
	Level   int             `json:"level"`
	Entries []InfobaseEntry `json:"entries"`
}

// InfobaseResult is the infobase.get payload.
type InfobaseResult struct {
	Node   string          `json:"node"`
	Levels []InfobaseLevel `json:"levels"`
}

func (n *Node) infobaseGet(params json.RawMessage) (any, error) {
	var p InfobaseParams
	if err := strictUnmarshal(params, &p); err != nil {
		return nil, err
	}
	if p.Level < 0 || p.Level > 2 {
		return nil, Errorf(CodeBadParams, "infobase.get level %d (want 0, 1 or 2)", p.Level)
	}
	tr, ok := n.B.Net.Router(n.B.LocalNode).Tables()
	if !ok {
		return nil, Errorf(CodeInternal, "node %s: data plane does not expose its tables", n.B.LocalNode)
	}
	res := InfobaseResult{Node: n.B.LocalNode}
	if p.Level == 0 || p.Level == 1 {
		lvl := InfobaseLevel{Level: 1, Entries: []InfobaseEntry{}}
		for _, e := range tr.FECEntries() {
			lvl.Entries = append(lvl.Entries, InfobaseEntry{
				FEC:     fmt.Sprintf("%v/%d", e.Dst, e.PrefixLen),
				NextHop: e.NHLFE.NextHop,
				Op:      e.NHLFE.Op.String(),
				Labels:  labelValues(e.NHLFE.PushLabels),
				CoS:     uint8(e.NHLFE.CoS),
			})
		}
		res.Levels = append(res.Levels, lvl)
	}
	if p.Level == 0 || p.Level == 2 {
		lvl := InfobaseLevel{Level: 2, Entries: []InfobaseEntry{}}
		for _, e := range tr.ILMEntries() {
			lvl.Entries = append(lvl.Entries, InfobaseEntry{
				InLabel: uint32(e.In),
				NextHop: e.NHLFE.NextHop,
				Op:      e.NHLFE.Op.String(),
				Labels:  labelValues(e.NHLFE.PushLabels),
			})
		}
		res.Levels = append(res.Levels, lvl)
	}
	return res, nil
}

func labelValues[T ~uint32](ls []T) []uint32 {
	if len(ls) == 0 {
		return nil
	}
	out := make([]uint32, len(ls))
	for i, l := range ls {
		out[i] = uint32(l)
	}
	return out
}

// ---- telemetry.scrape ----

// ScrapeResult carries the Prometheus text exposition of every mpls_*
// series the node registers.
type ScrapeResult struct {
	Text string `json:"text"`
}

func (n *Node) telemetryScrape(json.RawMessage) (any, error) {
	var sb strings.Builder
	if err := n.B.Registry.WriteText(&sb); err != nil {
		return nil, err
	}
	return ScrapeResult{Text: sb.String()}, nil
}

// ---- guard.set ----

// GuardSetParams carries the same "key=value,key=value" spec the
// -guard boot flag takes; both funnel through config.Overrides.Apply,
// so there is exactly one parser and one merge path.
type GuardSetParams struct {
	Spec string `json:"spec"`
}

// GuardSetResult reports the merged section now in force.
type GuardSetResult struct {
	Node  string               `json:"node"`
	Guard *config.GuardSection `json:"guard"`
}

func (n *Node) guardSet(params json.RawMessage) (any, error) {
	var p GuardSetParams
	if err := strictUnmarshal(params, &p); err != nil {
		return nil, err
	}
	if p.Spec == "" {
		return nil, Errorf(CodeBadParams, "guard.set needs spec")
	}
	g, err := n.B.SetGuardSpec(p.Spec)
	if err != nil {
		return nil, BadParams(err)
	}
	return GuardSetResult{Node: n.B.LocalNode, Guard: g}, nil
}

// ---- config.reload ----

// ReloadParams optionally overrides the scenario path for this one
// reload (the node's configured path is the default).
type ReloadParams struct {
	Path string `json:"path,omitempty"`
}

// ReloadResult wraps the delta report.
type ReloadResult struct {
	Node   string               `json:"node"`
	Path   string               `json:"path"`
	Report *config.ReloadReport `json:"report"`
}

func (n *Node) configReload(params json.RawMessage) (any, error) {
	var p ReloadParams
	if err := strictUnmarshal(params, &p); err != nil {
		return nil, err
	}
	path := p.Path
	if path == "" {
		path = n.ScenarioPath
	}
	if path == "" {
		return nil, Errorf(CodeBadParams, "config.reload: node has no scenario path")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, Errorf(CodeBadParams, "config.reload: %v", err)
	}
	defer f.Close()
	next, err := config.Load(f)
	if err != nil {
		return nil, BadParams(err)
	}
	// The same boot-time overrides apply to every generation of the
	// file: a reload must not silently revert -coalesce/-guard flags.
	if err := n.Overrides.Apply(next); err != nil {
		return nil, BadParams(err)
	}
	rep, err := n.B.ApplyDelta(next)
	if err != nil {
		return nil, BadParams(err)
	}
	return ReloadResult{Node: n.B.LocalNode, Path: path, Report: rep}, nil
}

// strictUnmarshal decodes params rejecting unknown fields, so a typo'd
// knob fails loudly instead of silently doing nothing. Nil params
// decode as the zero value.
func strictUnmarshal(params json.RawMessage, into any) error {
	if len(params) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(params)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return BadParams(err)
	}
	return nil
}
