package dataplane

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"embeddedmpls/internal/label"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/swmpls"
)

// tally is a batch egress sink that records per-call batch sizes and
// running totals per method, for flush-trigger and accounting checks.
type tally struct {
	mu        sync.Mutex
	flushes   []int // Flush batch sizes in call order
	forwarded uint64
	delivered uint64
	discarded uint64
}

func (t *tally) Flush(_ string, ps []*packet.Packet) {
	t.mu.Lock()
	t.flushes = append(t.flushes, len(ps))
	t.forwarded += uint64(len(ps))
	t.mu.Unlock()
}

func (t *tally) Deliver(ps []*packet.Packet) {
	t.mu.Lock()
	t.delivered += uint64(len(ps))
	t.mu.Unlock()
}

func (t *tally) Discard(ps []*packet.Packet, _ []swmpls.DropReason) {
	t.mu.Lock()
	t.discarded += uint64(len(ps))
	t.mu.Unlock()
}

func (t *tally) totals() (fwd, dlv, dsc uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.forwarded, t.delivered, t.discarded
}

// TestEgressSizeTrigger: with traffic outpacing the flush size, rings
// flush full — every size-triggered batch carries exactly flushN
// packets, and the batch histogram agrees with the flush counters.
func TestEgressSizeTrigger(t *testing.T) {
	tl := &tally{}
	e := New(WithWorkers(1), WithEgress(tl), WithEgressFlush(8, time.Hour))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if !submitWait(e, labelled(100, uint16(i), uint64(i))) {
			t.Fatal("submit refused")
		}
	}
	e.Close()

	fwd, _, _ := tl.totals()
	if fwd != n {
		t.Fatalf("sink saw %d forwarded packets, want %d", fwd, n)
	}
	snap := e.Snapshot()
	if snap.EgressFlushSize == 0 {
		t.Fatal("no size-triggered flushes despite saturating traffic")
	}
	tl.mu.Lock()
	for i, sz := range tl.flushes {
		if sz > 8 {
			t.Errorf("flush %d carried %d packets, flush size is 8", i, sz)
		}
	}
	tl.mu.Unlock()
	flushes := snap.EgressFlushSize + snap.EgressFlushTimer + snap.EgressFlushClose
	if snap.EgressBatch.Count != flushes {
		t.Errorf("batch histogram holds %d flushes, counters say %d", snap.EgressBatch.Count, flushes)
	}
	if got := uint64(snap.EgressBatch.Sum); got != n {
		t.Errorf("batch histogram sums %d packets, want %d", got, n)
	}
}

// TestEgressTimerTrigger: a partial ring on an idle queue must flush
// within the interval — no packet waits for the ring to fill.
func TestEgressTimerTrigger(t *testing.T) {
	tl := &tally{}
	e := New(WithWorkers(1), WithEgress(tl), WithEgressFlush(64, time.Millisecond))
	defer e.Close()
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !submitWait(e, labelled(100, uint16(i), uint64(i))) {
			t.Fatal("submit refused")
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if fwd, _, _ := tl.totals(); fwd == 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fwd, _, _ := tl.totals(); fwd != 5 {
		t.Fatalf("sink saw %d packets before Close, want 5 via the timer", fwd)
	}
	if snap := e.Snapshot(); snap.EgressFlushTimer == 0 {
		t.Error("no timer-triggered flush recorded")
	}
}

// TestEgressCloseDrain: packets staged in partial rings at Close must
// reach the sink before Close returns — the losslessness half of the
// close contract — and be counted as close-triggered flushes.
func TestEgressCloseDrain(t *testing.T) {
	tl := &tally{}
	// Flush size and interval both unreachable: only Close can flush.
	e := New(WithWorkers(2), WithEgress(tl), WithEgressFlush(1<<20, time.Hour))
	if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if !submitWait(e, labelled(100, uint16(i), uint64(i))) {
			t.Fatal("submit refused")
		}
	}
	e.Close()
	fwd, _, _ := tl.totals()
	if fwd != n {
		t.Fatalf("Close returned with %d of %d packets flushed", fwd, n)
	}
	snap := e.Snapshot()
	if snap.EgressFlushClose == 0 {
		t.Error("no close-triggered flush recorded")
	}
	if snap.EgressFlushSize != 0 || snap.EgressFlushTimer != 0 {
		t.Errorf("unexpected size/timer flushes (%d/%d) with unreachable thresholds",
			snap.EgressFlushSize, snap.EgressFlushTimer)
	}
}

// TestEgressAccountingConsistency: across concurrent workers and all
// three outcome classes, the engine's counters must equal the sum of
// the batch sizes its sink received — the packets==sum(batches)
// regression guard for the per-batch accounting path.
func TestEgressAccountingConsistency(t *testing.T) {
	tl := &tally{}
	e := New(WithWorkers(4), WithBatch(8), WithEgress(tl), WithEgressFlush(16, 100*time.Microsecond))
	if err := e.Update(func(f *swmpls.Forwarder) error {
		if err := f.InstallILM(100, swapNHLFE(200, "b")); err != nil {
			return err
		}
		return f.InstallILM(101, swmpls.NHLFE{NextHop: "e", Op: label.OpPop})
	}); err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		var p *packet.Packet
		switch i % 3 {
		case 0:
			p = labelled(100, uint16(i%64), uint64(i)) // forward
		case 1:
			p = labelled(101, uint16(i%64), uint64(i)) // deliver
		default:
			p = labelled(999, uint16(i%64), uint64(i)) // lookup miss: discard
		}
		if !submitWait(e, p) {
			t.Fatal("submit refused")
		}
	}
	e.Close()

	fwd, dlv, dsc := tl.totals()
	snap := e.Snapshot()
	if snap.Forwarded.Events != fwd {
		t.Errorf("engine forwarded %d, sink batch sum %d", snap.Forwarded.Events, fwd)
	}
	if snap.Delivered.Events != dlv {
		t.Errorf("engine delivered %d, sink batch sum %d", snap.Delivered.Events, dlv)
	}
	if snap.Dropped.Events != dsc {
		t.Errorf("engine dropped %d, sink batch sum %d", snap.Dropped.Events, dsc)
	}
	if fwd+dlv+dsc != n {
		t.Errorf("sink saw %d packets, offered %d", fwd+dlv+dsc, n)
	}
	if got := uint64(snap.EgressBatch.Sum); got != n {
		t.Errorf("batch histogram sums %d packets, want %d", got, n)
	}
}

// TestEgressCloseUnderFire races producers against Close: every packet
// the engine accepted must reach the sink exactly once — no packet may
// be stranded in a staging ring or double-flushed by the shutdown. Run
// under -race.
func TestEgressCloseUnderFire(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		tl := &tally{}
		e := New(WithWorkers(4), WithQueueCap(16), WithBatch(4),
			WithEgress(tl), WithEgressFlush(8, 50*time.Microsecond))
		if err := e.InstallILM(100, swapNHLFE(200, "b")); err != nil {
			t.Fatal(err)
		}
		var accepted atomic.Uint64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if g%2 == 0 {
						if submit(e, labelled(100, uint16(i), uint64(i))) {
							accepted.Add(1)
						}
					} else if submitWait(e, labelled(100, uint16(i), uint64(i))) {
						accepted.Add(1)
					}
				}
			}(g)
		}
		var closers sync.WaitGroup
		closers.Add(1)
		go func() {
			defer closers.Done()
			e.Close()
		}()
		closers.Wait()
		wg.Wait()

		fwd, dlv, dsc := tl.totals()
		if got, want := fwd+dlv+dsc, accepted.Load(); got != want {
			t.Fatalf("trial %d: sink saw %d packets, engine accepted %d", trial, got, want)
		}
		if snap := e.Snapshot(); snap.Processed() != accepted.Load() {
			t.Fatalf("trial %d: processed %d of %d accepted", trial, snap.Processed(), accepted.Load())
		}
	}
}
