// Package faults is the deterministic fault-injection layer: seeded
// schedules of link flaps, on-the-wire packet corruption, propagation
// delay spikes, dataplane shard stalls and control-plane write failures,
// applied to a simulated network through the small hook interfaces the
// data path exposes (netsim.Link.SetFault, dataplane.Engine's publish
// and stall hooks, infobase.Behavioral's write hook).
//
// Everything is driven by explicit seeds and the discrete-event clock,
// so the same seed always produces the same fault sequence — a chaos run
// is a reproducible test case, not a flake generator. The injected
// faults map onto the paper's discard transitions: corruption scrambles
// the top label so the next hop takes the lookup-miss discard, delay
// spikes push queues toward the overfull drop, and link flaps produce
// the wholesale loss the resilience layer exists to detect and heal.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"embeddedmpls/internal/infobase"
	"embeddedmpls/internal/label"
	"embeddedmpls/internal/netsim"
	"embeddedmpls/internal/packet"
	"embeddedmpls/internal/router"
	"embeddedmpls/internal/telemetry"
)

// ErrInjected is the error returned by injected control-plane failures
// (information-base writes, table publishes).
var ErrInjected = errors.New("faults: injected failure")

// Kind classifies one scheduled fault.
type Kind int

// The fault kinds.
const (
	// LinkDown fails both directions of the A-B connection at At.
	LinkDown Kind = iota
	// LinkUp restores the A-B connection at At.
	LinkUp
	// Corrupt scrambles the top label of every Nth packet crossing the
	// directed A->B link during [At, At+Duration).
	Corrupt
	// DelaySpike adds Extra seconds of propagation delay to every packet
	// crossing the directed A->B link during [At, At+Duration).
	DelaySpike
	// SessionSever mutes the signaling sessions across the A-B
	// connection (both directions) for Duration seconds: data packets
	// still flow, but hellos and keepalives are dropped, so the
	// control plane sees a dead peer on a healthy link. Requires a
	// sever hook on the Injector.
	SessionSever
)

// String names the kind for timelines and logs.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Corrupt:
		return "corrupt"
	case DelaySpike:
		return "delay-spike"
	case SessionSever:
		return "session-sever"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	At   float64
	Kind Kind
	// A, B name the affected connection (undirected for LinkDown/LinkUp,
	// the A->B direction for Corrupt and DelaySpike).
	A, B string
	// Duration is the window length of Corrupt and DelaySpike faults.
	Duration float64
	// Every corrupts every Nth packet in a Corrupt window (<=1: all).
	Every int
	// Extra is a DelaySpike's added propagation delay in seconds.
	Extra float64
}

// String renders the event for the injection log.
func (e Event) String() string {
	switch e.Kind {
	case Corrupt:
		return fmt.Sprintf("t=%.3fs %v %s->%s for %.3fs (every %d)", e.At, e.Kind, e.A, e.B, e.Duration, e.Every)
	case DelaySpike:
		return fmt.Sprintf("t=%.3fs %v %s->%s for %.3fs (+%.3gs)", e.At, e.Kind, e.A, e.B, e.Duration, e.Extra)
	case SessionSever:
		return fmt.Sprintf("t=%.3fs %v %s-%s for %.3fs", e.At, e.Kind, e.A, e.B, e.Duration)
	default:
		return fmt.Sprintf("t=%.3fs %v %s-%s", e.At, e.Kind, e.A, e.B)
	}
}

// Schedule is a time-ordered fault script.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Sort orders the events by time (stable, so equal-time events keep
// their scripted order).
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// GenSpec parameterises Generate.
type GenSpec struct {
	// Links are the connections faults may hit.
	Links [][2]string
	// Duration is the horizon faults are scheduled within (seconds).
	Duration float64
	// Flaps is the number of down/up pairs to inject.
	Flaps int
	// MeanOutage is the average down time per flap; actual outages are
	// uniform in [0.5, 1.5) x MeanOutage. <=0 means Duration/20.
	MeanOutage float64
	// Corruptions and DelaySpikes count the degradation windows.
	Corruptions int
	DelaySpikes int
	// SessionSevers counts signaling blackout windows: the control
	// plane goes deaf across a link while data keeps flowing. Needs a
	// sever hook on the Injector that applies the schedule.
	SessionSevers int
}

// Generate builds a seeded random schedule: the same seed and spec
// always yield the same events.
func Generate(seed int64, spec GenSpec) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed}
	if len(spec.Links) == 0 || spec.Duration <= 0 {
		return s
	}
	pick := func() [2]string { return spec.Links[rng.Intn(len(spec.Links))] }
	mean := spec.MeanOutage
	if mean <= 0 {
		mean = spec.Duration / 20
	}
	for i := 0; i < spec.Flaps; i++ {
		l := pick()
		at := rng.Float64() * spec.Duration * 0.8
		outage := mean * (0.5 + rng.Float64())
		s.Events = append(s.Events,
			Event{At: at, Kind: LinkDown, A: l[0], B: l[1]},
			Event{At: at + outage, Kind: LinkUp, A: l[0], B: l[1]})
	}
	for i := 0; i < spec.Corruptions; i++ {
		l := pick()
		at := rng.Float64() * spec.Duration * 0.8
		s.Events = append(s.Events, Event{
			At: at, Kind: Corrupt, A: l[0], B: l[1],
			Duration: spec.Duration / 10, Every: 1 + rng.Intn(4),
		})
	}
	for i := 0; i < spec.DelaySpikes; i++ {
		l := pick()
		at := rng.Float64() * spec.Duration * 0.8
		s.Events = append(s.Events, Event{
			At: at, Kind: DelaySpike, A: l[0], B: l[1],
			Duration: spec.Duration / 10, Extra: 0.001 + rng.Float64()*0.004,
		})
	}
	// Severs draw from the rng last so existing seeds keep producing
	// byte-identical flap/corrupt/spike schedules.
	for i := 0; i < spec.SessionSevers; i++ {
		l := pick()
		at := rng.Float64() * spec.Duration * 0.8
		s.Events = append(s.Events, Event{
			At: at, Kind: SessionSever, A: l[0], B: l[1],
			Duration: spec.Duration / 8,
		})
	}
	s.Sort()
	return s
}

// Record is one executed injection, for the recovery timeline.
type Record struct {
	At   float64
	What string
}

// Injector applies a Schedule to a simulated network.
type Injector struct {
	net    *router.Network
	events *telemetry.EventCounters
	faults map[te2]*linkFault // lazily installed per directed link
	log    []Record
	rng    *rand.Rand
	sever  func(a, b string, d float64) error
}

type te2 struct{ a, b string }

// NewInjector builds an injector over the network. The event counters
// are optional; when present, every injected down transition counts one
// link_flap.
func NewInjector(net *router.Network, events *telemetry.EventCounters) *Injector {
	return &Injector{net: net, events: events, faults: make(map[te2]*linkFault)}
}

// Log returns the executed injections in time order.
func (in *Injector) Log() []Record { return in.log }

// SetSessionSever installs the hook SessionSever events run: it should
// mute the signaling sessions across the a-b connection (both
// directions) for d seconds. Schedules containing SessionSever events
// fail to Apply without one — a chaos run that silently skipped its
// control-plane faults would be testing nothing.
func (in *Injector) SetSessionSever(fn func(a, b string, d float64) error) { in.sever = fn }

// Apply schedules every event of the fault script on the network's
// simulator. It validates link references up front so a typo in a
// schedule cannot silently test nothing.
func (in *Injector) Apply(s Schedule) error {
	in.rng = rand.New(rand.NewSource(s.Seed))
	for _, e := range s.Events {
		e := e
		if _, err := in.link(e.A, e.B); err != nil {
			return err
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if _, err := in.link(e.B, e.A); err != nil {
				return err
			}
			in.net.Sim.Schedule(e.At, func() {
				down := e.Kind == LinkDown
				_ = in.net.SetLinkDown(e.A, e.B, down)
				if down && in.events != nil {
					in.events.Inc(telemetry.EventLinkFlap)
				}
				in.record(e)
			})
		case Corrupt:
			every := e.Every
			if every <= 1 {
				every = 1
			}
			seed := in.rng.Int63()
			in.net.Sim.Schedule(e.At, func() {
				f := in.fault(e.A, e.B)
				f.addWindow(window{
					start: e.At, end: e.At + e.Duration,
					corruptEvery: every, rng: rand.New(rand.NewSource(seed)),
				})
				in.record(e)
			})
		case DelaySpike:
			in.net.Sim.Schedule(e.At, func() {
				f := in.fault(e.A, e.B)
				f.addWindow(window{start: e.At, end: e.At + e.Duration, extra: e.Extra})
				in.record(e)
			})
		case SessionSever:
			if in.sever == nil {
				return fmt.Errorf("faults: schedule has %v events but no sever hook is set", SessionSever)
			}
			in.net.Sim.Schedule(e.At, func() {
				_ = in.sever(e.A, e.B, e.Duration)
				in.record(e)
			})
		default:
			return fmt.Errorf("faults: unknown event kind %v", e.Kind)
		}
	}
	return nil
}

func (in *Injector) record(e Event) {
	in.log = append(in.log, Record{At: in.net.Sim.Now(), What: e.String()})
}

func (in *Injector) link(a, b string) (netsim.Wire, error) {
	ra, ok := in.net.Routers[a]
	if !ok {
		return nil, fmt.Errorf("faults: unknown node %q", a)
	}
	l, ok := ra.Link(b)
	if !ok {
		return nil, fmt.Errorf("faults: no link %s->%s", a, b)
	}
	return l, nil
}

// fault returns the (installed) fault hook of the a->b link.
func (in *Injector) fault(a, b string) *linkFault {
	key := te2{a, b}
	if f, ok := in.faults[key]; ok {
		return f
	}
	f := &linkFault{}
	l, _ := in.link(a, b)
	l.SetFault(f)
	in.faults[key] = f
	return f
}

// window is one active degradation interval on a link.
type window struct {
	start, end   float64
	corruptEvery int // 0: no corruption
	extra        float64
	rng          *rand.Rand
	seen         int
}

// linkFault implements netsim.Fault: it applies whichever windows cover
// the current simulated time. Expired windows are pruned lazily.
type linkFault struct {
	windows []*window
	// Corrupted counts packets whose top label was scrambled.
	Corrupted uint64
	// Delayed counts packets that took a delay spike.
	Delayed uint64
}

func (f *linkFault) addWindow(w window) { f.windows = append(f.windows, &w) }

// Transmit implements netsim.Fault.
func (f *linkFault) Transmit(p *packet.Packet, now netsim.Time) netsim.Verdict {
	var v netsim.Verdict
	live := f.windows[:0]
	for _, w := range f.windows {
		if now >= w.end {
			continue // expired: prune
		}
		live = append(live, w)
		if now < w.start {
			continue
		}
		if w.corruptEvery > 0 {
			w.seen++
			if w.seen%w.corruptEvery == 0 && corrupt(p, w.rng) {
				f.Corrupted++
			}
		}
		if w.extra > 0 {
			v.ExtraDelay += w.extra
			f.Delayed++
		}
	}
	f.windows = live
	return v
}

// corrupt scrambles the packet the way line noise would: a labelled
// packet's top label is replaced with garbage (so the next hop's lookup
// misses — the paper's "no match: discard" transition), an unlabelled
// packet loses header integrity (its destination is scrambled, so it
// dies as no-route or strays). Reports whether anything changed.
func corrupt(p *packet.Packet, rng *rand.Rand) bool {
	if p.Labelled() {
		// A garbage label in the unreserved space, far above anything an
		// allocator has handed out.
		garbage := label.Label(1<<19 | rng.Intn(1<<19))
		if err := p.Stack.Swap(garbage); err != nil {
			return false
		}
		return true
	}
	p.Header.Dst ^= packet.Addr(1 + rng.Intn(1<<30))
	return true
}

// ShardStall returns a dataplane stall hook that sleeps for d on every
// nth batch, counted across workers (n <= 1 stalls every batch). Wire it
// with Engine.SetStallHook; the counter is atomic, so the hook is safe
// on concurrent workers.
func ShardStall(n int, d time.Duration) func(worker int) {
	if n < 1 {
		n = 1
	}
	var c atomic.Uint64
	return func(int) {
		if c.Add(1)%uint64(n) == 0 {
			time.Sleep(d)
		}
	}
}

// FailFirst returns a hook that fails the first k calls with ErrInjected
// and succeeds afterwards — the canonical workload for retry/backoff
// logic. Use it as a dataplane publish hook directly, or adapt it with
// WriteFailures for the information base.
func FailFirst(k int) func() error {
	var c atomic.Int64
	return func() error {
		if c.Add(1) <= int64(k) {
			return fmt.Errorf("%w: transient write failure", ErrInjected)
		}
		return nil
	}
}

// FailEvery returns a hook that fails every nth call with ErrInjected
// (n <= 1 fails every call).
func FailEvery(n int) func() error {
	if n < 1 {
		n = 1
	}
	var c atomic.Uint64
	return func() error {
		if c.Add(1)%uint64(n) == 0 {
			return fmt.Errorf("%w: periodic write failure", ErrInjected)
		}
		return nil
	}
}

// WriteFailures adapts a call-counting hook (FailFirst, FailEvery) to
// the information base's write-hook signature.
func WriteFailures(hook func() error) func(infobase.Level, infobase.Pair) error {
	return func(infobase.Level, infobase.Pair) error { return hook() }
}
