package router

import (
	"sync"
	"testing"

	"embeddedmpls/internal/ldp"
	"embeddedmpls/internal/lsm"
	"embeddedmpls/internal/packet"
)

// udpLine builds a two-node a—b line wired over loopback UDP with an
// LSP from a to b.
func udpLine(t *testing.T) *Network {
	t.Helper()
	nodes := []NodeSpec{
		{Name: "a", RouterType: lsm.LER, Transport: TransportUDP},
		{Name: "b", RouterType: lsm.LER, Transport: TransportUDP},
	}
	links := []LinkSpec{{A: "a", B: "b", RateBPS: 10e6, Delay: 0.0001, Metric: 1}}
	net, err := Build(nodes, links)
	if err != nil {
		t.Fatal(err)
	}
	dst := packet.AddrFrom(10, 0, 0, 9)
	if _, err := net.LDP.SetupLSP(ldp.SetupRequest{
		ID: "l", FEC: ldp.FEC{Dst: dst, PrefixLen: 32}, Path: []string{"a", "b"},
	}); err != nil {
		net.Close()
		t.Fatal(err)
	}
	return net
}

// TestCloseIdempotentConcurrentSends is the teardown contract
// regression (run under -race): Close may be called repeatedly, from
// several goroutines, while traffic is still being pumped through
// transport sockets — without panics, races, or deadlock.
func TestCloseIdempotentConcurrentSends(t *testing.T) {
	net := udpLine(t)
	dst := packet.AddrFrom(10, 0, 0, 9)

	// Pump traffic on the real clock in the background: the ingress
	// keeps injecting while Close tears the sockets down under it.
	pumping := make(chan struct{})
	go func() {
		defer close(pumping)
		for i := 0; i < 3; i++ {
			net.Lock()
			for j := 0; j < 20; j++ {
				p := packet.New(1, dst, 64, make([]byte, 64))
				net.Router("a").Inject(p)
			}
			net.Unlock()
			net.RunReal(0.005)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			net.Close()
		}()
	}
	wg.Wait()
	<-pumping
	net.Close() // and once more after everything has quiesced
}

// TestCloseDeliversBeforeTeardown: a normal run over UDP transport
// delivers end to end, and Close afterwards is clean.
func TestCloseDeliversBeforeTeardown(t *testing.T) {
	net := udpLine(t)
	defer net.Close()
	dst := packet.AddrFrom(10, 0, 0, 9)

	net.Lock()
	for i := 0; i < 50; i++ {
		net.Router("a").Inject(packet.New(1, dst, 64, make([]byte, 64)))
	}
	net.Unlock()
	net.RunReal(0.2)

	net.Lock()
	delivered := net.Router("b").Stats.Delivered.Events
	net.Unlock()
	if delivered != 50 {
		t.Errorf("delivered %d of 50 packets over UDP transport", delivered)
	}
	net.Close()
	net.Close()
}
