package lsm

import "testing"

func TestResourceEstimate(t *testing.T) {
	r := EstimateResources()
	// Memory: (54 + 42 + 42) * 1024 = 141312 bits.
	if r.RAMBits != 141312 {
		t.Errorf("RAMBits = %d, want 141312", r.RAMBits)
	}
	if r.RegisterBits <= 0 || r.RegisterBits > 4096 {
		t.Errorf("RegisterBits = %d implausible", r.RegisterBits)
	}
	if len(r.Comparators) != 3 || r.Comparators[0] != 32 || r.Comparators[1] != 20 || r.Comparators[2] != 10 {
		t.Errorf("comparators = %v", r.Comparators)
	}
}

// TestFitsTargetDevice reproduces the paper's space claim: the whole
// information base uses ~4% of the EP1S40's block RAM.
func TestFitsTargetDevice(t *testing.T) {
	fits, frac := EstimateResources().FitsStratixEP1S40()
	if !fits {
		t.Fatal("design does not fit the paper's target device")
	}
	if frac > 0.05 {
		t.Errorf("uses %.1f%% of block RAM; the paper calls this easily supported", frac*100)
	}
}

// TestPaperSignalInventory checks that every external signal the paper's
// Tables 1-5 and Figures 14-16 name exists in the design under its paper
// name — the RTL model is navigable with the paper in hand.
func TestPaperSignalInventory(t *testing.T) {
	hw := New()
	for _, name := range []string{
		// Table 1 (main interface) and general control.
		"enable", "extoperation", "reset", "main_state",
		// Tables 2-3 (label stack interface) observables.
		"lsi_state", "rtrtype", "ttl_q", "stack_size", "stack_top",
		// Table 4 (information base interface).
		"ibi_state", "srch_enbl", "srch_done",
		// Table 5 (search module) and comparators.
		"search_state", "aeb_32b", "aeb_20b", "aeb_10b", "item_found",
		// Figures 14-16 simulation signals.
		"level", "packetid", "old_label", "new_label", "operation_in",
		"label_lookup", "save", "lookup", "r_index", "w_index",
		"label_out", "operation_out", "lookup_done", "packetdiscard",
	} {
		if hw.Sim.Lookup(name) == nil {
			t.Errorf("paper signal %q missing from the design", name)
		}
	}
}
