package integration

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"embeddedmpls/internal/config"
	"embeddedmpls/internal/telemetry"
)

// differentialScenario renders one three-node line scenario in four
// transport dresses: the pure simulator ("sim"), per-packet loopback
// UDP ("udp", the legacy wire), coalesced/batched loopback UDP
// ("batched"), and the batched wire driven end to end by sharded
// engines with the egress pump ("pumped"). Everything above the wire —
// topology, LSP, flow timing — is byte-identical, so any divergence in
// what arrives is the wire's (or the pump's) doing. The flow starts
// after signaling has converged so every variant carries exactly the
// same packets.
func differentialScenario(variant string, addrs []string) string {
	transport := ""
	switch variant {
	case "udp":
		transport = fmt.Sprintf(`,
  "transport": {"kind": "udp",
    "nodes": {"ingress": %q, "core": %q, "egress": %q}}`,
			addrs[0], addrs[1], addrs[2])
	case "batched":
		transport = fmt.Sprintf(`,
  "transport": {"kind": "udp", "coalesce": 32, "sys_batch": 32,
    "nodes": {"ingress": %q, "core": %q, "egress": %q}}`,
			addrs[0], addrs[1], addrs[2])
	case "pumped":
		transport = fmt.Sprintf(`,
  "transport": {"kind": "udp", "coalesce": 32, "sys_batch": 32, "shards": 2,
    "nodes": {"ingress": %q, "core": %q, "egress": %q}}`,
			addrs[0], addrs[1], addrs[2])
	}
	return fmt.Sprintf(`{
  "name": "differential-%s",
  "duration_s": 1.0,
  "nodes": [
    {"name": "ingress"}, {"name": "core"}, {"name": "egress"}
  ],
  "links": [
    {"a": "ingress", "b": "core", "rate_mbps": 100, "delay_ms": 0.1},
    {"a": "core", "b": "egress", "rate_mbps": 100, "delay_ms": 0.1}
  ],
  "lsps": [
    {"id": "l1", "dst": "10.0.0.9", "prefix_len": 32,
     "path": ["ingress", "core", "egress"]}
  ],
  "flows": [
    {"id": 1, "kind": "cbr", "from": "ingress", "dst": "10.0.0.9",
     "size_bytes": 256, "interval_ms": 10, "start_s": 0.4}
  ]%s
}`, variant, transport)
}

// wireResult is one variant's observable outcome: what the flow
// counted end to end and what the drop taxonomy blamed, summed over
// every node.
type wireResult struct {
	sent, delivered uint64
	drops           map[telemetry.Reason]uint64
}

func runDifferentialSim(t *testing.T, js string) wireResult {
	t.Helper()
	s, err := config.Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Net.Close()
	var drops telemetry.DropCounters
	b.Net.SetTelemetry(telemetry.Sink{Drops: &drops})
	b.Run()
	fs := b.Collector.Flow(1)
	return wireResult{
		sent:      fs.Sent.Events,
		delivered: fs.Delivered.Events,
		drops:     dropMap(&drops),
	}
}

func runDifferentialUDP(t *testing.T, js string) wireResult {
	t.Helper()
	s, err := config.Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ingress", "core", "egress"}
	built := make([]*config.Built, len(names))
	counters := make([]*telemetry.DropCounters, len(names))
	for i, name := range names {
		b, err := s.BuildNode(name)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Net.Close()
		var drops telemetry.DropCounters
		b.Net.SetTelemetry(telemetry.Sink{Drops: &drops})
		built[i] = b
		counters[i] = &drops
	}
	var wg sync.WaitGroup
	for _, b := range built {
		wg.Add(1)
		go func(b *config.Built) {
			defer wg.Done()
			b.Net.RunReal(s.DurationS + 0.3)
		}(b)
	}
	wg.Wait()

	ingress, egress := built[0], built[2]
	res := wireResult{drops: map[telemetry.Reason]uint64{}}
	ingress.Net.Lock()
	res.sent = ingress.Collector.Flow(1).Sent.Events
	ingress.Net.Unlock()
	egress.Net.Lock()
	res.delivered = egress.Collector.Flow(1).Delivered.Events
	egress.Net.Unlock()
	for i, b := range built {
		b.Net.Lock()
		for r, n := range dropMap(counters[i]) {
			res.drops[r] += n
		}
		b.Net.Unlock()
	}
	return res
}

// dropMap snapshots the nonzero counters of a drop taxonomy.
func dropMap(d *telemetry.DropCounters) map[telemetry.Reason]uint64 {
	m := map[telemetry.Reason]uint64{}
	for r := telemetry.Reason(0); r < telemetry.NumReasons; r++ {
		if n := d.Get(r); n > 0 {
			m[r] = n
		}
	}
	return m
}

// TestDifferentialTransports runs one scenario over the simulator, the
// legacy one-datagram-per-packet UDP wire, the batched coalesced-frame
// wire, and the sharded-engine egress pump on that batched wire, and
// demands all four agree: same packets sent, every one delivered, and
// zero drops in every taxonomy bucket. A coalescing bug (lost tail
// frame, miscounted segment, spurious decode drop) or a pump bug (a
// packet stranded in a staging ring, a batch flushed twice) shows up as
// a divergence here before it shows up in production topologies.
func TestDifferentialTransports(t *testing.T) {
	results := map[string]wireResult{
		"sim":     runDifferentialSim(t, differentialScenario("sim", nil)),
		"udp":     runDifferentialUDP(t, differentialScenario("udp", freeUDPAddrs(t, 3))),
		"batched": runDifferentialUDP(t, differentialScenario("batched", freeUDPAddrs(t, 3))),
		"pumped":  runDifferentialUDP(t, differentialScenario("pumped", freeUDPAddrs(t, 3))),
	}

	ref := results["sim"]
	if ref.sent == 0 {
		t.Fatal("sim variant sent nothing")
	}
	for name, r := range results {
		t.Logf("%-8s sent=%d delivered=%d drops=%v", name, r.sent, r.delivered, r.drops)
		if r.sent != ref.sent {
			t.Errorf("%s sent %d packets, sim sent %d — the flow must not depend on the wire",
				name, r.sent, ref.sent)
		}
		if r.delivered != r.sent {
			t.Errorf("%s delivered %d of %d sent", name, r.delivered, r.sent)
		}
		if len(r.drops) != 0 {
			t.Errorf("%s recorded drops %v, want none", name, r.drops)
		}
	}
}
