package stats

import "math"

// Series accumulates timestamped observations into fixed-width bins, for
// rate-over-time and latency-over-time reporting (e.g. watching goodput
// collapse and recover around a link failure).
type Series struct {
	width float64
	bins  []seriesBin
}

type seriesBin struct {
	count uint64
	bytes uint64
	sum   float64
}

// NewSeries creates a series with the given bin width in seconds.
func NewSeries(binWidth float64) *Series {
	if binWidth <= 0 {
		panic("stats: series bin width must be positive")
	}
	return &Series{width: binWidth}
}

// BinWidth returns the configured bin width.
func (s *Series) BinWidth() float64 { return s.width }

func (s *Series) bin(t float64) *seriesBin {
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		t = 0
	}
	i := int(t / s.width)
	for len(s.bins) <= i {
		s.bins = append(s.bins, seriesBin{})
	}
	return &s.bins[i]
}

// Observe records a value (e.g. a latency) at time t.
func (s *Series) Observe(t, v float64) {
	b := s.bin(t)
	b.count++
	b.sum += v
}

// Count records an event of the given size at time t (for rates).
func (s *Series) Count(t float64, bytes int) {
	b := s.bin(t)
	b.count++
	b.bytes += uint64(bytes)
}

// Merge folds o's bins into s. Both series must use the same bin width —
// the per-worker series of the dataplane engine are all created from one
// config, so a mismatch is a programming error and panics.
func (s *Series) Merge(o *Series) {
	if o == nil {
		return
	}
	if o.width != s.width {
		panic("stats: merging series with different bin widths")
	}
	for len(s.bins) < len(o.bins) {
		s.bins = append(s.bins, seriesBin{})
	}
	for i, b := range o.bins {
		s.bins[i].count += b.count
		s.bins[i].bytes += b.bytes
		s.bins[i].sum += b.sum
	}
}

// BinStat summarises one bin.
type BinStat struct {
	Start float64 // bin start time, seconds
	Count uint64
	Mean  float64 // mean observed value (0 if none)
	BPS   float64 // bytes recorded via Count, as bits/second
}

// Bins returns per-bin summaries in time order.
func (s *Series) Bins() []BinStat {
	out := make([]BinStat, len(s.bins))
	for i, b := range s.bins {
		st := BinStat{Start: float64(i) * s.width, Count: b.count}
		if b.count > 0 {
			st.Mean = b.sum / float64(b.count)
		}
		st.BPS = float64(b.bytes) * 8 / s.width
		out[i] = st
	}
	return out
}

// MinCountBin returns the bin with the fewest events among bins that lie
// strictly inside the observed range (the first and last bins are partial
// by construction). It reports false if fewer than three bins exist.
func (s *Series) MinCountBin() (BinStat, bool) {
	bins := s.Bins()
	if len(bins) < 3 {
		return BinStat{}, false
	}
	min := bins[1]
	for _, b := range bins[1 : len(bins)-1] {
		if b.Count < min.Count {
			min = b
		}
	}
	return min, true
}
